//! Systematic Hamming code: the paper's single-error-correcting baseline.

use crate::traits::{BusCode, DecodeStatus};
use socbus_model::Word;

/// Number of Hamming parity bits `m` for `k` data bits: the smallest `m`
/// with `k ≤ 2^m − m − 1` (paper §II-D). Grows as `log2 k`: 3 for k ≤ 4,
/// 4 for k ≤ 11, 5 for k ≤ 26, 6 for k ≤ 57.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn hamming_parity_bits(k: usize) -> usize {
    assert!(k > 0, "need at least one data bit");
    let mut m = 2;
    while (1usize << m) - m - 1 < k {
        m += 1;
    }
    m
}

/// Systematic Hamming code over `k` data bits: `k + m` wires, Hamming
/// distance 3, corrects any single-wire error.
///
/// Wire layout: `[d0, ..., d(k-1), p0, ..., p(m-1)]` — the data crosses
/// unmodified (framework condition 4), parity is appended.
///
/// Internally data bit `i` occupies canonical Hamming position
/// `data_position(i)` (the `i`-th non-power-of-two position ≥ 3) and
/// parity bit `j` position `2^j`; the syndrome of a corrupted word equals
/// the canonical position of the flipped bit.
///
/// # Examples
///
/// ```
/// use socbus_codes::{BusCode, Hamming};
/// use socbus_model::Word;
///
/// // Table III: 32 data bits need 6 parity bits -> 38 wires.
/// let mut code = Hamming::new(32);
/// assert_eq!(code.wires(), 38);
/// let d = Word::from_bits(0xCAFE_F00D, 32);
/// let mut cw = code.encode(d);
/// cw.set_bit(17, !cw.bit(17)); // single error anywhere
/// assert_eq!(code.decode(cw), d);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hamming {
    k: usize,
    m: usize,
    /// Canonical Hamming position (1-based) of each data bit.
    data_pos: Vec<usize>,
}

impl Hamming {
    /// Hamming code over `k` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the coded bus exceeds the word limit.
    #[must_use]
    pub fn new(k: usize) -> Self {
        let m = hamming_parity_bits(k);
        assert!(k + m <= socbus_model::word::MAX_WIDTH, "bus too wide");
        let mut data_pos = Vec::with_capacity(k);
        let mut pos = 1usize;
        while data_pos.len() < k {
            if !pos.is_power_of_two() {
                data_pos.push(pos);
            }
            pos += 1;
        }
        Hamming { k, m, data_pos }
    }

    /// Number of parity bits `m`.
    #[must_use]
    pub fn parity_bits(&self) -> usize {
        self.m
    }

    /// Data-bit indices covered by parity bit `j` — the XOR-tree fan-in of
    /// that parity output. Needed by the netlist generator and by BIH's
    /// parallel-parity trick (paper §III-B), which must know whether each
    /// parity covers an odd or even number of data bits.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.parity_bits()`.
    #[must_use]
    pub fn parity_coverage(&self, j: usize) -> Vec<usize> {
        assert!(j < self.m, "parity index {j} out of range");
        (0..self.k)
            .filter(|&i| self.data_pos[i] & (1 << j) != 0)
            .collect()
    }

    /// Computes the `m` parity bits for a data word.
    fn parities(&self, data: Word) -> Word {
        let mut p = Word::zero(self.m);
        for j in 0..self.m {
            let mut acc = false;
            for i in 0..self.k {
                if self.data_pos[i] & (1 << j) != 0 {
                    acc ^= data.bit(i);
                }
            }
            p.set_bit(j, acc);
        }
        p
    }
}

impl BusCode for Hamming {
    fn name(&self) -> String {
        "Hamming".into()
    }

    fn data_bits(&self) -> usize {
        self.k
    }

    fn wires(&self) -> usize {
        self.k + self.m
    }

    fn encode(&mut self, data: Word) -> Word {
        assert_eq!(data.width(), self.k, "data width mismatch");
        data.concat(self.parities(data))
    }

    fn decode(&mut self, bus: Word) -> Word {
        self.decode_checked(bus).0
    }

    fn decode_checked(&mut self, bus: Word) -> (Word, DecodeStatus) {
        assert_eq!(bus.width(), self.wires(), "bus width mismatch");
        let mut data = bus.slice(0, self.k);
        let recv_p = bus.slice(self.k, self.m);
        let calc_p = self.parities(data);
        let syndrome = recv_p.xor(calc_p).bits() as usize;
        if syndrome == 0 {
            return (data, DecodeStatus::Clean);
        }
        if !syndrome.is_power_of_two() {
            // Error in a data bit: find the bit with that canonical position.
            match self.data_pos.iter().position(|&p| p == syndrome) {
                Some(i) => data.set_bit(i, !data.bit(i)),
                // Syndrome points outside the used positions: uncorrectable
                // (multi-bit) error.
                None => return (data, DecodeStatus::Detected),
            }
        }
        // Power-of-two syndrome: a parity wire flipped; data is intact.
        (data, DecodeStatus::Corrected)
    }

    fn correctable_errors(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parity_bit_counts_match_paper() {
        assert_eq!(hamming_parity_bits(4), 3); // Table II: 7 wires
        assert_eq!(hamming_parity_bits(5), 4); // BIH 4-bit: data+invert
        assert_eq!(hamming_parity_bits(11), 4);
        assert_eq!(hamming_parity_bits(26), 5);
        assert_eq!(hamming_parity_bits(32), 6); // Table III: 38 wires
        assert_eq!(hamming_parity_bits(33), 6); // BIH 32-bit: 39 wires
        assert_eq!(hamming_parity_bits(57), 6);
        assert_eq!(hamming_parity_bits(64), 7);
    }

    #[test]
    fn roundtrip_clean() {
        let mut c = Hamming::new(8);
        for w in Word::enumerate_all(8) {
            let (d, s) = {
                let cw = c.encode(w);
                c.decode_checked(cw)
            };
            assert_eq!(d, w);
            assert_eq!(s, DecodeStatus::Clean);
        }
    }

    #[test]
    fn corrects_every_single_error_exhaustive() {
        let mut c = Hamming::new(4);
        for w in Word::enumerate_all(4) {
            let cw = c.encode(w);
            for i in 0..cw.width() {
                let bad = cw.with_bit(i, !cw.bit(i));
                let (d, s) = c.decode_checked(bad);
                assert_eq!(d, w, "flip wire {i} of {cw}");
                assert_eq!(s, DecodeStatus::Corrected);
            }
        }
    }

    #[test]
    fn corrects_single_errors_wide_random() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut c = Hamming::new(32);
        for _ in 0..300 {
            let w = Word::from_bits(rng.gen::<u128>(), 32);
            let cw = c.encode(w);
            let i = rng.gen_range(0..cw.width());
            assert_eq!(c.decode(cw.with_bit(i, !cw.bit(i))), w);
        }
    }

    #[test]
    fn minimum_distance_is_three() {
        let mut c = Hamming::new(4);
        let mut min = u32::MAX;
        for a in Word::enumerate_all(4) {
            for b in Word::enumerate_all(4) {
                if a != b {
                    min = min.min(c.encode(a).hamming_distance(c.encode(b)));
                }
            }
        }
        assert_eq!(min, 3);
    }

    #[test]
    fn code_is_linear() {
        // XOR of codewords is a codeword (needed by Appendix-I reasoning
        // and the framework's "linear ECC" requirement).
        let mut c = Hamming::new(6);
        for a in Word::enumerate_all(6) {
            for b in Word::enumerate_all(6) {
                let ca = c.encode(a);
                let cb = c.encode(b);
                assert_eq!(ca.xor(cb), c.encode(a.xor(b)));
            }
        }
    }

    #[test]
    fn parity_coverage_is_consistent_with_encoder() {
        let c = Hamming::new(16);
        for j in 0..c.parity_bits() {
            let cover = c.parity_coverage(j);
            // Flipping exactly one covered data bit flips parity j.
            let mut enc = c.clone();
            let base = enc.encode(Word::zero(16));
            let mut d = Word::zero(16);
            d.set_bit(cover[0], true);
            let cw = enc.encode(d);
            assert!(base.bit(16 + j) != cw.bit(16 + j));
        }
    }

    #[test]
    fn systematic_layout() {
        let mut c = Hamming::new(8);
        let d = Word::from_bits(0b1011_0010, 8);
        let cw = c.encode(d);
        assert_eq!(cw.slice(0, 8), d, "data must cross unmodified");
    }
}
