//! Single even-parity bit: the minimal systematic ECC.

use crate::traits::{BusCode, DecodeStatus};
use socbus_model::Word;

/// Even parity over `k` data bits: `k + 1` wires, Hamming distance 2,
/// detects any single error.
///
/// Wire layout: `[d0, ..., d(k-1), p]`.
///
/// # Examples
///
/// ```
/// use socbus_codes::{BusCode, DecodeStatus, ParityBit};
/// use socbus_model::Word;
///
/// let mut code = ParityBit::new(4);
/// let coded = code.encode(Word::from_bits(0b0111, 4));
/// assert!(coded.bit(4), "odd-weight data sets the parity wire");
/// let flipped = coded.with_bit(2, !coded.bit(2));
/// let (_, status) = code.decode_checked(flipped);
/// assert_eq!(status, DecodeStatus::Detected);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParityBit {
    k: usize,
}

impl ParityBit {
    /// Parity-protected `k`-bit bus.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k + 1` exceeds the word limit.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one data bit");
        assert!(k < socbus_model::word::MAX_WIDTH, "bus too wide");
        ParityBit { k }
    }
}

impl BusCode for ParityBit {
    fn name(&self) -> String {
        "Parity".into()
    }

    fn data_bits(&self) -> usize {
        self.k
    }

    fn wires(&self) -> usize {
        self.k + 1
    }

    fn encode(&mut self, data: Word) -> Word {
        assert_eq!(data.width(), self.k, "data width mismatch");
        let p = data.count_ones() % 2 == 1;
        data.concat(Word::from_bools(&[p]))
    }

    fn decode(&mut self, bus: Word) -> Word {
        self.decode_checked(bus).0
    }

    fn decode_checked(&mut self, bus: Word) -> (Word, DecodeStatus) {
        assert_eq!(bus.width(), self.wires(), "bus width mismatch");
        let data = bus.slice(0, self.k);
        let expect = data.count_ones() % 2 == 1;
        let status = if bus.bit(self.k) == expect {
            DecodeStatus::Clean
        } else {
            DecodeStatus::Detected
        };
        (data, status)
    }

    fn detectable_errors(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_clean() {
        let mut c = ParityBit::new(5);
        for w in Word::enumerate_all(5) {
            let (d, s) = {
                let cw = c.encode(w);
                c.decode_checked(cw)
            };
            assert_eq!(d, w);
            assert_eq!(s, DecodeStatus::Clean);
        }
    }

    #[test]
    fn every_single_error_is_detected() {
        let mut c = ParityBit::new(4);
        for w in Word::enumerate_all(4) {
            let cw = c.encode(w);
            for i in 0..cw.width() {
                let bad = cw.with_bit(i, !cw.bit(i));
                let (_, s) = c.decode_checked(bad);
                assert_eq!(s, DecodeStatus::Detected, "flip {i} of {cw}");
            }
        }
    }

    #[test]
    fn double_errors_escape_detection() {
        let mut c = ParityBit::new(4);
        let cw = c.encode(Word::from_bits(0b1010, 4));
        let bad = cw.with_bit(0, !cw.bit(0)).with_bit(1, !cw.bit(1));
        let (_, s) = c.decode_checked(bad);
        assert_eq!(
            s,
            DecodeStatus::Clean,
            "distance-2 code cannot see double errors"
        );
    }

    #[test]
    fn minimum_distance_is_two() {
        let mut c = ParityBit::new(3);
        let mut min = u32::MAX;
        for a in Word::enumerate_all(3) {
            for b in Word::enumerate_all(3) {
                if a != b {
                    min = min.min(c.encode(a).hamming_distance(c.encode(b)));
                }
            }
        }
        assert_eq!(min, 2);
    }
}
