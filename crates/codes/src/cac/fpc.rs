//! Forbidden-pattern codes (FPC) — Duan, Tirumala & Khatri's CAC.
//!
//! A codeword satisfies the **FP condition** when it contains neither the
//! bit pattern `010` nor `101` anywhere. If every codeword in a codebook
//! satisfies it, every transition has worst-case delay `(1 + 2λ)τ0` —
//! a *memoryless* per-codeword condition, unlike the pairwise FT
//! condition. The number of FP words on `n` wires is `2·F(n+1)`
//! (Fibonacci), so the asymptotic overhead approaches `1/log2(φ) ≈ 1.44×`,
//! below duplication's 2×.
//!
//! Because the FP condition survives complementation (`010`/`101` swap
//! into each other's absence), FP codebooks — unlike FT ones — compose
//! with bus-invert low-power coding (paper §III-A).

use std::sync::Arc;

use crate::kernels::{codebook_kernel, BookKey, CodebookKernel};
use crate::traits::{BusCode, DecodeStatus};
use socbus_model::{DelayClass, Word};

/// Whether `w` contains no `010` or `101` pattern.
#[must_use]
pub fn fp_condition(w: Word) -> bool {
    for i in 0..w.width().saturating_sub(2) {
        let (a, b, c) = (w.bit(i), w.bit(i + 1), w.bit(i + 2));
        if a == c && a != b {
            return false;
        }
    }
    true
}

/// The raw enumeration behind [`fpc_codebook`] — called through the
/// process-wide cache in [`crate::kernels`], at most once per `wires`.
pub(crate) fn enumerate_fp_book(wires: usize) -> Vec<Word> {
    assert!(
        (1..=24).contains(&wires),
        "fpc_codebook supports 1..=24 wires"
    );
    Word::enumerate_all(wires)
        .filter(|&w| fp_condition(w))
        .collect()
}

/// All FP-condition words on `wires` wires, ascending. Memoized: the
/// enumeration runs once per process per wire count; repeated calls
/// clone the cached book.
///
/// # Panics
///
/// Panics if `wires == 0` or `wires > 24` (enumeration guard).
#[must_use]
pub fn fpc_codebook(wires: usize) -> Vec<Word> {
    crate::kernels::fp_book(wires).as_ref().clone()
}

/// Smallest wire count whose FP codebook holds `2^bits` codewords.
#[must_use]
pub fn fpc_wires_for_bits(bits: usize) -> usize {
    for wires in 1..=24 {
        // |FP(n)| = 2·F(n+1); grow until it covers the data alphabet.
        if fpc_codebook_len(wires) >= 1usize << bits {
            return wires;
        }
    }
    panic!("no FP codebook within 24 wires for {bits} bits");
}

fn fpc_codebook_len(wires: usize) -> usize {
    // a(1)=2, a(2)=4, a(n) = a(n-1) + a(n-2)  (2·Fibonacci).
    let (mut prev, mut cur) = (2usize, 4usize);
    match wires {
        1 => return 2,
        2 => return 4,
        _ => {}
    }
    for _ in 3..=wires {
        let next = prev + cur;
        prev = cur;
        cur = next;
    }
    cur
}

/// Single-group forbidden-pattern code: `k` data bits mapped onto the
/// first `2^k` FP codewords of the minimal wire count.
///
/// This is the general (non-duplication) FPC; the paper's DAP family uses
/// [`super::Duplication`] — the trivial FPC — because its decoder is a
/// wire permutation. `ForbiddenPatternCode` exists to quantify the
/// rate/complexity tradeoff between the two (see the ablation bench).
///
/// # Examples
///
/// ```
/// use socbus_codes::{BusCode, ForbiddenPatternCode};
/// use socbus_model::Word;
///
/// let mut fpc = ForbiddenPatternCode::new(4);
/// assert!(fpc.wires() < 8, "beats duplication's 2k wires");
/// let d = Word::from_bits(0b1011, 4);
/// let coded = fpc.encode(d);
/// assert_eq!(fpc.decode(coded), d);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForbiddenPatternCode {
    k: usize,
    wires: usize,
    kernel: Arc<CodebookKernel>,
}

impl ForbiddenPatternCode {
    /// FPC over `k` data bits (single group). The codebook and its
    /// inverse decode table come from the process-wide kernel cache:
    /// constructing any number of codecs enumerates the book once.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 16` (single-group table size guard).
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(
            (1..=16).contains(&k),
            "single-group FPC supports 1..=16 bits"
        );
        let kernel = codebook_kernel(BookKey::Fpc { k });
        let wires = kernel.wires();
        ForbiddenPatternCode { k, wires, kernel }
    }

    /// The codebook in data-index order.
    #[must_use]
    pub fn codebook(&self) -> &[Word] {
        self.kernel.book()
    }

    /// The reference linear-scan decoder (exact match, then first-
    /// minimum nearest codeword — the same lowest-index tie-break as
    /// [`BusCode::decode`]). Kept for the decode-equivalence tests and
    /// the `bench --bin codec` scan baseline.
    #[must_use]
    pub fn decode_scan(&self, bus: Word) -> Word {
        assert_eq!(bus.width(), self.wires, "bus width mismatch");
        let (idx, _) = self.kernel.decode_index_scan(bus);
        Word::from_bits(idx as u128, self.k)
    }
}

impl BusCode for ForbiddenPatternCode {
    fn name(&self) -> String {
        "FPC".into()
    }

    fn data_bits(&self) -> usize {
        self.k
    }

    fn wires(&self) -> usize {
        self.wires
    }

    fn encode(&mut self, data: Word) -> Word {
        assert_eq!(data.width(), self.k, "data width mismatch");
        self.kernel.book()[data.bits() as usize]
    }

    /// Decodes via the kernel's inverse table: the exact match when
    /// `bus` is a codeword, else the **nearest codeword by Hamming
    /// distance, lowest codebook index on ties** — the pinned fallback
    /// contract (identical to a first-minimum linear scan, which the
    /// equivalence tests verify exhaustively).
    fn decode(&mut self, bus: Word) -> Word {
        assert_eq!(bus.width(), self.wires, "bus width mismatch");
        let (idx, _) = self.kernel.decode_index(bus);
        Word::from_bits(idx as u128, self.k)
    }

    /// Like [`BusCode::decode`], but reports whether the received word
    /// was a valid codeword: a non-codeword bus yields
    /// [`DecodeStatus::Detected`] (best-effort nearest data) instead of
    /// being silently mapped. FPC guarantees no minimum distance
    /// ([`BusCode::detectable_errors`] stays 0) — the status is
    /// best-effort membership checking, not a detection promise.
    fn decode_checked(&mut self, bus: Word) -> (Word, DecodeStatus) {
        assert_eq!(bus.width(), self.wires, "bus width mismatch");
        let (idx, exact) = self.kernel.decode_index(bus);
        let status = if exact {
            DecodeStatus::Clean
        } else {
            DecodeStatus::Detected
        };
        (Word::from_bits(idx as u128, self.k), status)
    }

    fn guaranteed_delay_class(&self) -> DelayClass {
        DelayClass::CAC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::{bus_delay_factor, TransitionVector};

    #[test]
    fn codebook_counts_are_2_fibonacci() {
        assert_eq!(fpc_codebook(1).len(), 2);
        assert_eq!(fpc_codebook(2).len(), 4);
        assert_eq!(fpc_codebook(3).len(), 6);
        assert_eq!(fpc_codebook(4).len(), 10);
        assert_eq!(fpc_codebook(5).len(), 16);
        assert_eq!(fpc_codebook(6).len(), 26);
        // closed form agrees with enumeration
        for n in 1..=10 {
            assert_eq!(fpc_codebook(n).len(), fpc_codebook_len(n), "n={n}");
        }
    }

    #[test]
    fn fp_condition_examples() {
        assert!(!fp_condition(Word::from_bits(0b010, 3)));
        assert!(!fp_condition(Word::from_bits(0b101, 3)));
        assert!(fp_condition(Word::from_bits(0b011, 3)));
        assert!(!fp_condition(Word::from_bits(0b11010, 5)));
    }

    #[test]
    fn four_bits_fit_on_five_wires() {
        // 2^4 = 16 = |FP(5)|: four bits need only five wires (vs 8 for
        // duplication).
        assert_eq!(fpc_wires_for_bits(4), 5);
        assert_eq!(ForbiddenPatternCode::new(4).wires(), 5);
    }

    #[test]
    fn roundtrip() {
        for k in 1..=6 {
            let mut c = ForbiddenPatternCode::new(k);
            for w in Word::enumerate_all(k) {
                assert_eq!(
                    {
                        let cw = c.encode(w);
                        c.decode(cw)
                    },
                    w,
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn any_fp_pair_transition_is_cac_class() {
        // The FP condition is per-codeword, so *every* pair of FP words
        // must transition within (1+2λ) — check exhaustively on 5 wires.
        let lambda = 2.8;
        let book = fpc_codebook(5);
        let mut worst: f64 = 0.0;
        for &a in &book {
            for &b in &book {
                let tv = TransitionVector::between(a, b);
                worst = worst.max(bus_delay_factor(&tv, lambda));
            }
        }
        assert!(
            worst <= DelayClass::CAC.factor(lambda) + 1e-12,
            "worst factor {worst}"
        );
    }

    #[test]
    fn complementing_an_fp_word_preserves_fp() {
        for &w in &fpc_codebook(6) {
            assert!(fp_condition(w.not()), "complement of {w} violates FP");
        }
    }
}
