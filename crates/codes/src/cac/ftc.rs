//! Forbidden-transition codes (FTC) — Victor & Keutzer's CAC.
//!
//! A set of codewords satisfies the **FT condition** when no transition
//! between two codewords of the set drives adjacent wires in opposite
//! directions. The largest such set on `n` wires has Fibonacci size
//! `F(n+2)` (3, 5, 8, 13, … for n = 2, 3, 4, 5), so 4 wires carry 3 bits —
//! the `FTC(4,3)` sub-bus code the paper builds FTC+HC from.
//!
//! Wide buses are partitioned into sub-bus groups with one grounded shield
//! wire between groups (groups are FT-safe internally; the shield makes
//! the boundary safe). For 32 bits this yields the paper's 53 wires:
//! ten 3-bit groups (4 wires each) + one 2-bit group (3 wires) + ten
//! shields.

use std::sync::Arc;

use crate::kernels::{codebook_kernel, BookKey, CodebookKernel};
use crate::traits::{BusCode, DecodeStatus};
use socbus_model::{DelayClass, Word};

/// Whether the transition `u → v` satisfies the FT condition: at no wire
/// boundary do the two words carry `01` in one and `10` in the other.
#[must_use]
pub fn ft_compatible(u: Word, v: Word) -> bool {
    assert_eq!(u.width(), v.width(), "width mismatch");
    for i in 0..u.width().saturating_sub(1) {
        let du = (u.bit(i), u.bit(i + 1));
        let dv = (v.bit(i), v.bit(i + 1));
        if (du == (false, true) && dv == (true, false))
            || (du == (true, false) && dv == (false, true))
        {
            return false;
        }
    }
    true
}

/// The maximum FT-condition codebook on `wires` wires, found by exact
/// maximum-clique search over the FT-compatibility graph, returned in
/// ascending numeric order.
///
/// The size follows the Fibonacci sequence `F(wires+2)`.
///
/// Memoized: the clique search runs once per process per wire count;
/// repeated calls clone the cached book.
///
/// # Panics
///
/// Panics if `wires == 0` or `wires > 6` (the clique search is exact and
/// exponential; wider buses should be partitioned into groups).
#[must_use]
pub fn ftc_codebook(wires: usize) -> Vec<Word> {
    crate::kernels::ft_book(wires).as_ref().clone()
}

/// The raw clique search behind [`ftc_codebook`] — called through the
/// process-wide cache in [`crate::kernels`], at most once per `wires`.
pub(crate) fn search_ft_book(wires: usize) -> Vec<Word> {
    assert!(
        (1..=6).contains(&wires),
        "ftc_codebook supports 1..=6 wires"
    );
    let n_vert = 1usize << wires;
    // adjacency bitsets over at most 64 vertices
    let mut adj = vec![0u64; n_vert];
    for a in 0..n_vert {
        for b in (a + 1)..n_vert {
            let wa = Word::from_bits(a as u128, wires);
            let wb = Word::from_bits(b as u128, wires);
            if ft_compatible(wa, wb) {
                adj[a] |= 1 << b;
                adj[b] |= 1 << a;
            }
        }
    }
    let best = max_clique(&adj);
    let mut book: Vec<Word> = (0..n_vert)
        .filter(|v| best & (1 << v) != 0)
        .map(|v| Word::from_bits(v as u128, wires))
        .collect();
    book.sort();
    book
}

/// Exact maximum clique over ≤64 vertices (simple branch and bound).
fn max_clique(adj: &[u64]) -> u64 {
    fn expand(adj: &[u64], current: u64, candidates: u64, best: &mut u64) {
        if candidates == 0 {
            if current.count_ones() > best.count_ones() {
                *best = current;
            }
            return;
        }
        if current.count_ones() + candidates.count_ones() <= best.count_ones() {
            return; // bound
        }
        let mut cand = candidates;
        while cand != 0 {
            let v = cand.trailing_zeros() as usize;
            let vbit = 1u64 << v;
            cand &= !vbit;
            if (current | cand).count_ones() < best.count_ones() {
                return;
            }
            expand(adj, current | vbit, cand & adj[v], best);
        }
    }
    let mut best = 0u64;
    expand(
        adj,
        0,
        (1u128 << adj.len()).wrapping_sub(1) as u64,
        &mut best,
    );
    if adj.len() == 64 {
        // (1<<64) wrapped; recompute candidates mask as all-ones.
        best = 0;
        expand(adj, 0, u64::MAX, &mut best);
    }
    best
}

/// Group shape used when partitioning `k` data bits into FTC sub-buses.
///
/// 3-bit groups on 4 wires are the densest small group (`F(6) = 8`); a
/// remainder of 2 bits takes 3 wires (`F(5) = 5`) and a remainder of 1 is
/// merged with a 3-bit group into a 4-bit group on 6 wires (`F(8) = 21`),
/// which beats a separate 1-bit group plus shield. This reproduces the
/// paper's wire counts: 53 wires for 32 bits (Table III) and 6 FTC wires
/// inside the 14-wire 4-bit FTC+HC (Table II).
fn group_sizes(k: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let full = k / 3;
    let rem = k % 3;
    match (full, rem) {
        (0, r) => {
            // k < 3: one small group.
            debug_assert!(r == k);
            out.push((k, [0, 2, 3][k]));
        }
        (f, 1) => {
            // Fold the lone remainder bit into the last group: 4 bits / 6 wires.
            for _ in 0..f - 1 {
                out.push((3, 4));
            }
            out.push((4, 6));
        }
        (f, r) => {
            for _ in 0..f {
                out.push((3, 4));
            }
            if r == 2 {
                out.push((2, 3));
            }
        }
    }
    out
}

/// The `(data_bits, wires)` sub-bus partition used for `k` data bits —
/// exposed so the gate-level synthesizer can mirror the exact grouping.
#[must_use]
pub fn ftc_groups(k: usize) -> Vec<(usize, usize)> {
    group_sizes(k)
}

/// Total wires (groups + inter-group shields) for `k` data bits.
#[must_use]
pub fn ftc_wires_for_bits(k: usize) -> usize {
    let groups = group_sizes(k);
    groups.iter().map(|&(_, w)| w).sum::<usize>() + groups.len().saturating_sub(1)
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Group {
    data_lo: usize,
    bits: usize,
    wire_lo: usize,
    wires: usize,
    /// Shared decode kernel for this group's shape. Only four distinct
    /// shapes ever occur (`group_sizes`), so every FTC instance in the
    /// process — any width, encoder or decoder — shares the same four
    /// cached kernels.
    kernel: Arc<CodebookKernel>,
}

/// Partitioned forbidden-transition code over `k` data bits.
///
/// # Examples
///
/// ```
/// use socbus_codes::{BusCode, ForbiddenTransitionCode};
/// use socbus_model::Word;
///
/// // The paper's Table III row: FTC on 32 bits uses 53 wires.
/// let mut ftc = ForbiddenTransitionCode::new(32);
/// assert_eq!(ftc.wires(), 53);
/// let d = Word::from_bits(0xDEAD_BEEF, 32);
/// let coded = ftc.encode(d);
/// assert_eq!(ftc.decode(coded), d);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForbiddenTransitionCode {
    k: usize,
    wires: usize,
    groups: Vec<Group>,
    /// Set bits at the inter-group shield wires. Only meaningful on the
    /// raw fast path (`wires <= 128`); zero otherwise.
    shield_mask: u128,
}

impl ForbiddenTransitionCode {
    /// FTC over `k` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the coded bus exceeds the word limit.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one data bit");
        let wires = ftc_wires_for_bits(k);
        assert!(wires <= socbus_model::word::MAX_WIDTH, "FTC bus too wide");
        let mut groups = Vec::new();
        let mut data_lo = 0;
        let mut wire_lo = 0;
        for (bits, gw) in group_sizes(k) {
            groups.push(Group {
                data_lo,
                bits,
                wire_lo,
                wires: gw,
                kernel: codebook_kernel(BookKey::FtcGroup { bits, wires: gw }),
            });
            data_lo += bits;
            wire_lo += gw + 1; // +1 shield after the group
        }
        let mut shield_mask = 0u128;
        if wires <= 128 {
            for g in &groups[..groups.len() - 1] {
                shield_mask |= 1u128 << (g.wire_lo + g.wires);
            }
        }
        ForbiddenTransitionCode {
            k,
            wires,
            groups,
            shield_mask,
        }
    }

    /// The reference linear-scan decoder (per group: exact match, then
    /// first-minimum nearest codeword — the same lowest-index tie-break
    /// as [`BusCode::decode`]). Kept for the decode-equivalence tests
    /// and the `bench --bin codec` scan baseline.
    #[must_use]
    pub fn decode_scan(&self, bus: Word) -> Word {
        assert_eq!(bus.width(), self.wires, "bus width mismatch");
        let mut out = Word::zero(self.k);
        for g in &self.groups {
            let recv = bus.slice(g.wire_lo, g.wires);
            let (idx, _) = g.kernel.decode_index_scan(recv);
            for b in 0..g.bits {
                out.set_bit(g.data_lo + b, (idx >> b) & 1 == 1);
            }
        }
        out
    }
}

impl ForbiddenTransitionCode {
    /// Bus wire indices that carry code bits (everything except the
    /// inter-group shields), in ascending order. FTC+HC computes its
    /// Hamming parity over exactly these wires.
    #[must_use]
    pub fn info_wires(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for g in &self.groups {
            out.extend(g.wire_lo..g.wire_lo + g.wires);
        }
        out
    }
}

impl BusCode for ForbiddenTransitionCode {
    fn name(&self) -> String {
        "FTC".into()
    }

    fn data_bits(&self) -> usize {
        self.k
    }

    fn wires(&self) -> usize {
        self.wires
    }

    fn encode(&mut self, data: Word) -> Word {
        assert_eq!(data.width(), self.k, "data width mismatch");
        if self.wires <= 128 {
            // Raw fast path: assemble the bus in one u128, no per-bit
            // Word mutation. Shields stay 0.
            let raw = data.bits();
            let mut out = 0u128;
            for g in &self.groups {
                #[allow(clippy::cast_possible_truncation)]
                let idx = ((raw >> g.data_lo) & ((1u128 << g.bits) - 1)) as usize;
                out |= g.kernel.codeword_bits(idx) << g.wire_lo;
            }
            return Word::from_bits(out, self.wires);
        }
        let mut out = Word::zero(self.wires);
        for g in &self.groups {
            #[allow(clippy::cast_possible_truncation)]
            let idx = data.slice(g.data_lo, g.bits).bits() as usize;
            let cw = g.kernel.book()[idx];
            for b in 0..g.wires {
                out.set_bit(g.wire_lo + b, cw.bit(b));
            }
        }
        out
    }

    /// Decodes each group via its kernel's inverse table: the exact match
    /// when the group slice is a codeword, else the **nearest codeword by
    /// Hamming distance, lowest codebook index on ties** — the pinned
    /// fallback contract (identical to a first-minimum linear scan, which
    /// the equivalence tests verify exhaustively). Shield wires are
    /// ignored here; [`BusCode::decode_checked`] inspects them.
    fn decode(&mut self, bus: Word) -> Word {
        assert_eq!(bus.width(), self.wires, "bus width mismatch");
        if self.wires <= 128 {
            // Raw fast path: per group one shift-mask, one inverse-table
            // load, one or-shift — no Word slicing.
            let raw = bus.bits();
            let mut out = 0u128;
            for g in &self.groups {
                let recv = (raw >> g.wire_lo) & ((1u128 << g.wires) - 1);
                let (idx, _) = g.kernel.decode_index_raw(recv);
                out |= (idx as u128) << g.data_lo;
            }
            return Word::from_bits(out, self.k);
        }
        let mut out = Word::zero(self.k);
        for g in &self.groups {
            let recv = bus.slice(g.wire_lo, g.wires);
            let (idx, _) = g.kernel.decode_index(recv);
            for b in 0..g.bits {
                out.set_bit(g.data_lo + b, (idx >> b) & 1 == 1);
            }
        }
        out
    }

    /// Like [`BusCode::decode`], but reports whether the received bus was
    /// a valid codeword: every group slice must match its codebook exactly
    /// **and** every inter-group shield wire must read 0, else the word is
    /// [`DecodeStatus::Detected`] (best-effort nearest data per group).
    /// FTC guarantees no minimum distance ([`BusCode::detectable_errors`]
    /// stays 0) — the status is best-effort membership checking, not a
    /// detection promise.
    fn decode_checked(&mut self, bus: Word) -> (Word, DecodeStatus) {
        assert_eq!(bus.width(), self.wires, "bus width mismatch");
        let mut valid;
        let out;
        if self.wires <= 128 {
            let raw = bus.bits();
            // Shield wires sit just past every group but the last; the
            // encoder grounds them, so any set shield marks corruption.
            valid = raw & self.shield_mask == 0;
            let mut bits = 0u128;
            for g in &self.groups {
                let recv = (raw >> g.wire_lo) & ((1u128 << g.wires) - 1);
                let (idx, exact) = g.kernel.decode_index_raw(recv);
                valid &= exact;
                bits |= (idx as u128) << g.data_lo;
            }
            out = Word::from_bits(bits, self.k);
        } else {
            let mut bits = Word::zero(self.k);
            valid = true;
            for g in &self.groups {
                let recv = bus.slice(g.wire_lo, g.wires);
                let (idx, exact) = g.kernel.decode_index(recv);
                valid &= exact;
                for b in 0..g.bits {
                    bits.set_bit(g.data_lo + b, (idx >> b) & 1 == 1);
                }
            }
            for g in &self.groups[..self.groups.len() - 1] {
                valid &= !bus.bit(g.wire_lo + g.wires);
            }
            out = bits;
        }
        let status = if valid {
            DecodeStatus::Clean
        } else {
            DecodeStatus::Detected
        };
        (out, status)
    }

    fn guaranteed_delay_class(&self) -> DelayClass {
        DelayClass::CAC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::{bus_delay_factor, TransitionVector};

    #[test]
    fn codebook_sizes_are_fibonacci() {
        assert_eq!(ftc_codebook(1).len(), 2);
        assert_eq!(ftc_codebook(2).len(), 3);
        assert_eq!(ftc_codebook(3).len(), 5);
        assert_eq!(ftc_codebook(4).len(), 8);
        assert_eq!(ftc_codebook(5).len(), 13);
        assert_eq!(ftc_codebook(6).len(), 21);
    }

    #[test]
    fn codebook_is_pairwise_ft_compatible() {
        for wires in 2..=5 {
            let book = ftc_codebook(wires);
            for &a in &book {
                for &b in &book {
                    assert!(ft_compatible(a, b), "{a} vs {b} on {wires} wires");
                }
            }
        }
    }

    #[test]
    fn wire_counts_match_paper() {
        assert_eq!(ftc_wires_for_bits(32), 53); // Table III
        assert_eq!(ftc_wires_for_bits(3), 4); // FTC(4,3)
        assert_eq!(ftc_wires_for_bits(4), 6); // FTC part of 4-bit FTC+HC
        assert_eq!(ftc_wires_for_bits(6), 9); // two 3-bit groups + shield
        assert_eq!(ftc_wires_for_bits(7), 11); // 3-bit + 4-bit + shield
        assert_eq!(ftc_wires_for_bits(1), 2);
        assert_eq!(ftc_wires_for_bits(2), 3);
    }

    #[test]
    fn roundtrip_small_and_wide() {
        for k in [1usize, 2, 3, 4, 5, 7, 8] {
            let mut c = ForbiddenTransitionCode::new(k);
            for w in Word::enumerate_all(k) {
                assert_eq!(
                    {
                        let cw = c.encode(w);
                        c.decode(cw)
                    },
                    w,
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn worst_case_delay_is_cac_class_exhaustive() {
        // Full-bus check including the group-boundary shields.
        let lambda = 3.1;
        let mut c = ForbiddenTransitionCode::new(4);
        let mut worst: f64 = 0.0;
        for b in Word::enumerate_all(4) {
            for a in Word::enumerate_all(4) {
                let tv = TransitionVector::between(c.encode(b), c.encode(a));
                worst = worst.max(bus_delay_factor(&tv, lambda));
            }
        }
        assert!(
            worst <= DelayClass::CAC.factor(lambda) + 1e-12,
            "worst factor {worst}"
        );
    }

    #[test]
    fn ft_compatibility_examples() {
        let w = |b: u128| Word::from_bits(b, 2);
        assert!(!ft_compatible(w(0b01), w(0b10)));
        assert!(ft_compatible(w(0b00), w(0b11)));
        assert!(ft_compatible(w(0b01), w(0b11)));
        assert!(ft_compatible(w(0b01), w(0b00)));
    }

    #[test]
    fn decode_nearest_recovers_single_group_error() {
        // Not guaranteed correction, but the nearest-codeword fallback must
        // return *some* valid data word without panicking.
        let mut c = ForbiddenTransitionCode::new(3);
        let cw = c.encode(Word::from_bits(0b101, 3));
        let corrupted = cw.with_bit(0, !cw.bit(0));
        let _ = c.decode(corrupted);
    }
}
