//! Half-shielding: a shield after every *pair* of wires.

use crate::traits::{BusCode, DecodeStatus};
use socbus_model::{DelayClass, Word};

/// Half-shielding: data wires in pairs with a grounded shield between
/// consecutive pairs — `k` bits on `k + ceil(k/2) − 1` wires.
///
/// Each data wire has at most one switching neighbor, so the worst-case
/// delay is `(1 + 3λ)τ0` — between uncoded `(1+4λ)` and full shielding
/// `(1+2λ)`. The paper's HammingX uses this layout on the Hamming parity
/// group: the `λτ0` of slack masks the Hamming encoder delay (§III-E) at
/// roughly half the wire cost of full shielding.
///
/// Wire layout for k = 5: `[d0, d1, S, d2, d3, S, d4]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HalfShielding {
    k: usize,
}

impl HalfShielding {
    /// Half-shielded `k`-bit bus.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the coded bus exceeds the word limit.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one data bit");
        let wires = k + k.div_ceil(2) - 1;
        assert!(wires <= socbus_model::word::MAX_WIDTH, "bus too wide");
        HalfShielding { k }
    }

    /// Bus wire index of data bit `i`: pairs of data wires separated by one
    /// shield.
    fn wire_of(i: usize) -> usize {
        // Pair p = i/2 starts at wire 3p; members at 3p and 3p+1.
        3 * (i / 2) + (i % 2)
    }
}

impl BusCode for HalfShielding {
    fn name(&self) -> String {
        "Half-shielding".into()
    }

    fn data_bits(&self) -> usize {
        self.k
    }

    fn wires(&self) -> usize {
        self.k + self.k.div_ceil(2) - 1
    }

    fn encode(&mut self, data: Word) -> Word {
        assert_eq!(data.width(), self.k, "data width mismatch");
        let mut out = Word::zero(self.wires());
        for i in 0..self.k {
            out.set_bit(Self::wire_of(i), data.bit(i));
        }
        out
    }

    fn decode(&mut self, bus: Word) -> Word {
        assert_eq!(bus.width(), self.wires(), "bus width mismatch");
        let mut out = Word::zero(self.k);
        for i in 0..self.k {
            out.set_bit(i, bus.bit(Self::wire_of(i)));
        }
        out
    }

    /// Like [`BusCode::decode`], but reports whether the received bus was
    /// a valid codeword: shields sit at wires `≡ 2 (mod 3)` and the
    /// encoder grounds them, so a set shield marks the word
    /// [`DecodeStatus::Detected`]. Flips on data wires are invisible —
    /// every data pattern is a codeword — so
    /// [`BusCode::detectable_errors`] stays 0; the status is best-effort
    /// membership checking, not a detection promise.
    fn decode_checked(&mut self, bus: Word) -> (Word, DecodeStatus) {
        let out = self.decode(bus);
        let shields_clear = (0..bus.width()).filter(|w| w % 3 == 2).all(|w| !bus.bit(w));
        let status = if shields_clear {
            DecodeStatus::Clean
        } else {
            DecodeStatus::Detected
        };
        (out, status)
    }

    fn guaranteed_delay_class(&self) -> DelayClass {
        DelayClass::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::{bus_delay_factor, TransitionVector};

    #[test]
    fn roundtrip() {
        for k in 1..=6 {
            let mut c = HalfShielding::new(k);
            for w in Word::enumerate_all(k) {
                assert_eq!(
                    {
                        let cw = c.encode(w);
                        c.decode(cw)
                    },
                    w
                );
            }
        }
    }

    #[test]
    fn wire_counts_match_paper() {
        // HammingX 4-bit: 3 parity bits half-shielded -> 4 wires (8 total).
        assert_eq!(HalfShielding::new(3).wires(), 4);
        // HammingX 32-bit: 6 parity bits -> 8 wires (41 total).
        assert_eq!(HalfShielding::new(6).wires(), 8);
    }

    #[test]
    fn layout_for_five_bits() {
        let mut c = HalfShielding::new(5);
        let coded = c.encode(Word::from_bits(0b11111, 5));
        // MSB-first string of [d0,d1,S,d2,d3,S,d4] with all-ones data.
        assert_eq!(coded.to_string(), "1011011");
    }

    #[test]
    fn worst_case_delay_is_1_plus_3_lambda() {
        let lambda = 2.2;
        let mut c = HalfShielding::new(4);
        let mut worst: f64 = 0.0;
        for b in Word::enumerate_all(4) {
            for a in Word::enumerate_all(4) {
                let tv = TransitionVector::between(c.encode(b), c.encode(a));
                worst = worst.max(bus_delay_factor(&tv, lambda));
            }
        }
        assert!(
            (worst - DelayClass::new(3).factor(lambda)).abs() < 1e-12,
            "worst factor {worst}"
        );
    }
}
