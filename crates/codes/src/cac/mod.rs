//! Crosstalk-avoidance codes (CAC).
//!
//! The delay of a wire depends on its own and its neighbors' transitions
//! (model eq. (1)); the worst case `(1+4λ)τ0` occurs when both neighbors
//! switch against the victim. CACs restrict codeword transitions so the
//! worst case is `(1+2λ)τ0`, via one of two conditions:
//!
//! * **Forbidden transition (FT)**: no transition may drive adjacent wires
//!   in opposite directions. Satisfied trivially by [`Shielding`]; with
//!   fewer wires by the Fibonacci-codebook [`ForbiddenTransitionCode`].
//! * **Forbidden pattern (FP)**: no codeword contains `010` or `101`.
//!   Satisfied trivially by [`Duplication`]; general FP codebooks are
//!   provided by [`ForbiddenPatternCode`].
//!
//! [`HalfShielding`] is the weaker layout used by the paper's HammingX to
//! cap parity-wire delay at `(1+3λ)τ0`.
//!
//! Appendix I of the paper proves no *linear* code beats shielding (FT) or
//! duplication (FP); see [`crate::theory`] for the executable check.

mod duplication;
mod fpc;
mod ftc;
mod half_shielding;
mod shielding;

pub use duplication::Duplication;
pub(crate) use fpc::enumerate_fp_book;
pub use fpc::{fp_condition, fpc_codebook, fpc_wires_for_bits, ForbiddenPatternCode};
pub(crate) use ftc::search_ft_book;
pub use ftc::{
    ft_compatible, ftc_codebook, ftc_groups, ftc_wires_for_bits, ForbiddenTransitionCode,
};
pub use half_shielding::HalfShielding;
pub use shielding::Shielding;
