//! Wire shielding: the trivial forbidden-transition code.

use crate::traits::{BusCode, DecodeStatus};
use socbus_model::{DelayClass, Word};

/// Shielding: a grounded wire between every pair of data wires —
/// `k` data bits on `2k − 1` wires.
///
/// Every switching wire has only grounded neighbors, so its delay is at
/// most `(1 + 2λ)τ0` (the shields still present their coupling
/// capacitance). No codec logic is required, which is why the paper's
/// Table III shows shielding with zero codec overhead — at the price of the
/// largest wire count and no power or reliability benefit.
///
/// Wire layout: `[d0, S, d1, S, ..., d(k-1)]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shielding {
    k: usize,
}

impl Shielding {
    /// Shielded `k`-bit bus.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the shielded bus exceeds the word limit.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one data bit");
        assert!(
            2 * k - 1 <= socbus_model::word::MAX_WIDTH,
            "shielded bus too wide"
        );
        Shielding { k }
    }
}

impl BusCode for Shielding {
    fn name(&self) -> String {
        "Shielding".into()
    }

    fn data_bits(&self) -> usize {
        self.k
    }

    fn wires(&self) -> usize {
        2 * self.k - 1
    }

    fn encode(&mut self, data: Word) -> Word {
        assert_eq!(data.width(), self.k, "data width mismatch");
        let mut out = Word::zero(self.wires());
        for i in 0..self.k {
            out.set_bit(2 * i, data.bit(i));
        }
        out
    }

    fn decode(&mut self, bus: Word) -> Word {
        assert_eq!(bus.width(), self.wires(), "bus width mismatch");
        let mut out = Word::zero(self.k);
        for i in 0..self.k {
            out.set_bit(i, bus.bit(2 * i));
        }
        out
    }

    /// Like [`BusCode::decode`], but reports whether the received bus was
    /// a valid codeword: the encoder grounds every odd (shield) wire, so a
    /// set shield marks the word [`DecodeStatus::Detected`]. Flips on data
    /// wires are invisible — every data pattern is a codeword — so
    /// [`BusCode::detectable_errors`] stays 0; the status is best-effort
    /// membership checking, not a detection promise.
    fn decode_checked(&mut self, bus: Word) -> (Word, DecodeStatus) {
        let out = self.decode(bus);
        let shields_clear = (0..self.k.saturating_sub(1)).all(|i| !bus.bit(2 * i + 1));
        let status = if shields_clear {
            DecodeStatus::Clean
        } else {
            DecodeStatus::Detected
        };
        (out, status)
    }

    fn guaranteed_delay_class(&self) -> DelayClass {
        DelayClass::CAC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::{bus_delay_factor, TransitionVector};

    #[test]
    fn roundtrip() {
        let mut c = Shielding::new(4);
        for w in Word::enumerate_all(4) {
            assert_eq!(
                {
                    let cw = c.encode(w);
                    c.decode(cw)
                },
                w
            );
        }
    }

    #[test]
    fn shields_stay_grounded() {
        let mut c = Shielding::new(3);
        let coded = c.encode(Word::from_bits(0b111, 3));
        assert_eq!(coded.to_string(), "10101");
    }

    #[test]
    fn wire_count_matches_paper() {
        // Table III: 32-bit shielded bus uses 63 wires.
        assert_eq!(Shielding::new(32).wires(), 63);
    }

    #[test]
    fn worst_case_delay_is_cac_class() {
        let lambda = 2.8;
        let mut c = Shielding::new(3);
        let mut worst: f64 = 0.0;
        for b in Word::enumerate_all(3) {
            for a in Word::enumerate_all(3) {
                let tv = TransitionVector::between(c.encode(b), c.encode(a));
                worst = worst.max(bus_delay_factor(&tv, lambda));
            }
        }
        assert!((worst - DelayClass::CAC.factor(lambda)).abs() < 1e-12);
    }
}
