//! Wire duplication: the trivial forbidden-pattern code.

use crate::traits::{BusCode, DecodeStatus};
use socbus_model::{DelayClass, Word};

/// Duplication: every data bit driven on two adjacent wires —
/// `k` data bits on `2k` wires.
///
/// No codeword can contain `010` or `101` (bits come in equal pairs), so
/// the FP condition holds and the worst-case delay is `(1 + 2λ)τ0`.
/// Duplication is the CAC component of the paper's DAP-family joint codes
/// and doubles as a distance-2 error-detecting code.
///
/// Wire layout: `[d0, d0, d1, d1, ..., d(k-1), d(k-1)]`.
///
/// Decoding uses the even copy of each pair; [`Duplication::mismatch_mask`]
/// exposes pairs whose copies disagree (single-wire error detection).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Duplication {
    k: usize,
}

impl Duplication {
    /// Duplicated `k`-bit bus.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `2k` exceeds the word limit.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one data bit");
        assert!(
            2 * k <= socbus_model::word::MAX_WIDTH,
            "duplicated bus too wide"
        );
        Duplication { k }
    }

    /// Data-bit positions whose two copies disagree in `bus` — a nonzero
    /// mask means a detectable error.
    ///
    /// # Panics
    ///
    /// Panics if `bus.width() != 2k`.
    #[must_use]
    pub fn mismatch_mask(&self, bus: Word) -> Word {
        assert_eq!(bus.width(), self.wires(), "bus width mismatch");
        let mut m = Word::zero(self.k);
        for i in 0..self.k {
            m.set_bit(i, bus.bit(2 * i) != bus.bit(2 * i + 1));
        }
        m
    }
}

impl BusCode for Duplication {
    fn name(&self) -> String {
        "Duplication".into()
    }

    fn data_bits(&self) -> usize {
        self.k
    }

    fn wires(&self) -> usize {
        2 * self.k
    }

    fn encode(&mut self, data: Word) -> Word {
        assert_eq!(data.width(), self.k, "data width mismatch");
        let mut out = Word::zero(self.wires());
        for i in 0..self.k {
            out.set_bit(2 * i, data.bit(i));
            out.set_bit(2 * i + 1, data.bit(i));
        }
        out
    }

    fn decode(&mut self, bus: Word) -> Word {
        assert_eq!(bus.width(), self.wires(), "bus width mismatch");
        let mut out = Word::zero(self.k);
        for i in 0..self.k {
            out.set_bit(i, bus.bit(2 * i));
        }
        out
    }

    fn detectable_errors(&self) -> usize {
        1
    }

    fn decode_checked(&mut self, bus: Word) -> (Word, DecodeStatus) {
        let status = if self.mismatch_mask(bus).count_ones() == 0 {
            DecodeStatus::Clean
        } else {
            DecodeStatus::Detected
        };
        (self.decode(bus), status)
    }

    fn guaranteed_delay_class(&self) -> DelayClass {
        DelayClass::CAC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::{bus_delay_factor, TransitionVector};

    #[test]
    fn roundtrip() {
        let mut c = Duplication::new(4);
        for w in Word::enumerate_all(4) {
            assert_eq!(
                {
                    let cw = c.encode(w);
                    c.decode(cw)
                },
                w
            );
        }
    }

    #[test]
    fn codewords_have_no_forbidden_patterns() {
        let mut c = Duplication::new(4);
        for w in Word::enumerate_all(4) {
            let cw = c.encode(w);
            for i in 0..cw.width() - 2 {
                let pat = (cw.bit(i), cw.bit(i + 1), cw.bit(i + 2));
                assert_ne!(pat, (false, true, false), "010 in {cw}");
                assert_ne!(pat, (true, false, true), "101 in {cw}");
            }
        }
    }

    #[test]
    fn worst_case_delay_is_cac_class() {
        let lambda = 1.3;
        let mut c = Duplication::new(3);
        let mut worst: f64 = 0.0;
        for b in Word::enumerate_all(3) {
            for a in Word::enumerate_all(3) {
                let tv = TransitionVector::between(c.encode(b), c.encode(a));
                worst = worst.max(bus_delay_factor(&tv, lambda));
            }
        }
        assert!((worst - DelayClass::CAC.factor(lambda)).abs() < 1e-12);
    }

    #[test]
    fn minimum_distance_is_two() {
        let mut c = Duplication::new(3);
        let mut min = u32::MAX;
        for b in Word::enumerate_all(3) {
            for a in Word::enumerate_all(3) {
                if a != b {
                    min = min.min(c.encode(a).hamming_distance(c.encode(b)));
                }
            }
        }
        assert_eq!(min, 2);
    }

    #[test]
    fn decode_checked_reports_pair_mismatch() {
        let mut c = Duplication::new(4);
        let cw = c.encode(Word::from_bits(0b0110, 4));
        assert_eq!(c.decode_checked(cw).1, DecodeStatus::Clean);
        let corrupted = cw.with_bit(0, !cw.bit(0));
        let (_, status) = c.decode_checked(corrupted);
        assert_eq!(status, DecodeStatus::Detected);
    }

    #[test]
    fn mismatch_mask_flags_corrupted_pair() {
        let mut c = Duplication::new(4);
        let cw = c.encode(Word::from_bits(0b1010, 4));
        assert_eq!(c.mismatch_mask(cw).count_ones(), 0);
        let corrupted = cw.with_bit(5, !cw.bit(5)); // second copy of bit 2
        let mask = c.mismatch_mask(corrupted);
        assert_eq!(mask.count_ones(), 1);
        assert!(mask.bit(2));
    }
}
