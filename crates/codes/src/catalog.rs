//! A catalog of every scheme in the paper's evaluation (Tables II & III),
//! constructible by name — the entry point used by the benches, the NoC
//! simulator, and the examples.

use crate::cac::{Duplication, ForbiddenTransitionCode, Shielding};
use crate::ecc::{BchDec, ExtendedHamming, Hamming, ParityBit};
use crate::joint::{Bih, Bsc, Dap, Dapbi, Dapx, FtcHc, HammingX};
use crate::lpc::BusInvert;
use crate::sabotage::SabotagedHamming;
use crate::traits::{BusCode, Uncoded};

/// Every coding scheme the paper evaluates, plus the extension codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No coding (Table III baseline).
    Uncoded,
    /// Bus-invert with `i` sub-buses.
    BusInvert(usize),
    /// Full shielding.
    Shielding,
    /// Wire duplication (building block; also a detect-1 code).
    Duplication,
    /// Forbidden-transition code.
    Ftc,
    /// Single parity bit (detect-1 ECC).
    Parity,
    /// Systematic Hamming.
    Hamming,
    /// Hamming with half-shielded parity (encoder-delay masking).
    HammingX,
    /// Bus-invert + Hamming with parallel parity.
    Bih,
    /// FTC concatenated with Hamming, shielded parity.
    FtcHc,
    /// Boundary shift code (Patel & Markov baseline).
    Bsc,
    /// Duplicate-add-parity.
    Dap,
    /// DAP with duplicated (masked) parity.
    Dapx,
    /// DAP + bus-invert + duplicated invert bit.
    Dapbi,
    /// Extended Hamming SEC-DED (paper §V extension).
    ExtHamming,
    /// Double-error-correcting BCH (paper §V extension).
    BchDec,
    /// Hamming with a deliberately broken decoder that delivers
    /// single-wire errors silently — **harness self-tests only**; never
    /// part of [`Scheme::catalog`] or the paper tables. See
    /// [`crate::sabotage`].
    Sabotaged,
}

impl Scheme {
    /// Builds the codec for `k` data bits.
    #[must_use]
    pub fn build(self, k: usize) -> Box<dyn BusCode> {
        match self {
            Scheme::Uncoded => Box::new(Uncoded::new(k)),
            Scheme::BusInvert(i) => Box::new(BusInvert::new(k, i)),
            Scheme::Shielding => Box::new(Shielding::new(k)),
            Scheme::Duplication => Box::new(Duplication::new(k)),
            Scheme::Ftc => Box::new(ForbiddenTransitionCode::new(k)),
            Scheme::Parity => Box::new(ParityBit::new(k)),
            Scheme::Hamming => Box::new(Hamming::new(k)),
            Scheme::HammingX => Box::new(HammingX::new(k)),
            Scheme::Bih => Box::new(Bih::new(k)),
            Scheme::FtcHc => Box::new(FtcHc::new(k)),
            Scheme::Bsc => Box::new(Bsc::new(k)),
            Scheme::Dap => Box::new(Dap::new(k)),
            Scheme::Dapx => Box::new(Dapx::new(k)),
            Scheme::Dapbi => Box::new(Dapbi::new(k)),
            Scheme::ExtHamming => Box::new(ExtendedHamming::new(k)),
            Scheme::BchDec => Box::new(BchDec::new(k)),
            Scheme::Sabotaged => Box::new(SabotagedHamming::new(k)),
        }
    }

    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Scheme::BusInvert(i) => format!("BI({i})"),
            other => other.build_name(),
        }
    }

    fn build_name(self) -> String {
        match self {
            Scheme::Uncoded => "Uncoded".into(),
            Scheme::BusInvert(_) => unreachable!("handled by name()"),
            Scheme::Shielding => "Shielding".into(),
            Scheme::Duplication => "Duplication".into(),
            Scheme::Ftc => "FTC".into(),
            Scheme::Parity => "Parity".into(),
            Scheme::Hamming => "Hamming".into(),
            Scheme::HammingX => "HammingX".into(),
            Scheme::Bih => "BIH".into(),
            Scheme::FtcHc => "FTC+HC".into(),
            Scheme::Bsc => "BSC".into(),
            Scheme::Dap => "DAP".into(),
            Scheme::Dapx => "DAPX".into(),
            Scheme::Dapbi => "DAPBI".into(),
            Scheme::ExtHamming => "ExtHamming".into(),
            Scheme::BchDec => "BCH-DEC".into(),
            Scheme::Sabotaged => "Sabotaged".into(),
        }
    }

    /// Parses a scheme from its [`Scheme::name`] rendering (the inverse
    /// mapping, used by chaos replay files and CLI arguments).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Scheme> {
        if let Some(i) = name
            .strip_prefix("BI(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            return i.parse().ok().map(Scheme::BusInvert);
        }
        let scheme = match name {
            "Uncoded" => Scheme::Uncoded,
            "Shielding" => Scheme::Shielding,
            "Duplication" => Scheme::Duplication,
            "FTC" => Scheme::Ftc,
            "Parity" => Scheme::Parity,
            "Hamming" => Scheme::Hamming,
            "HammingX" => Scheme::HammingX,
            "BIH" => Scheme::Bih,
            "FTC+HC" => Scheme::FtcHc,
            "BSC" => Scheme::Bsc,
            "DAP" => Scheme::Dap,
            "DAPX" => Scheme::Dapx,
            "DAPBI" => Scheme::Dapbi,
            "ExtHamming" => Scheme::ExtHamming,
            "BCH-DEC" => Scheme::BchDec,
            "Sabotaged" => Scheme::Sabotaged,
            _ => return None,
        };
        Some(scheme)
    }

    /// The reliable-bus comparison set of Table II (4-bit bus).
    #[must_use]
    pub fn table2() -> Vec<Scheme> {
        vec![
            Scheme::Hamming,
            Scheme::HammingX,
            Scheme::Bih,
            Scheme::FtcHc,
            Scheme::Bsc,
            Scheme::Dap,
            Scheme::Dapx,
            Scheme::Dapbi,
        ]
    }

    /// The 32-bit comparison set of Table III.
    #[must_use]
    pub fn table3() -> Vec<Scheme> {
        vec![
            Scheme::Uncoded,
            Scheme::BusInvert(1),
            Scheme::BusInvert(8),
            Scheme::Shielding,
            Scheme::Ftc,
            Scheme::Hamming,
            Scheme::HammingX,
            Scheme::Bih,
            Scheme::FtcHc,
            Scheme::Bsc,
            Scheme::Dap,
            Scheme::Dapx,
            Scheme::Dapbi,
        ]
    }

    /// Whether the scheme can correct a single wire error.
    ///
    /// `Sabotaged` *claims* correction (that is its planted lie); the
    /// chaos monitors are what call the bluff.
    #[must_use]
    pub fn corrects_errors(self) -> bool {
        matches!(
            self,
            Scheme::Hamming
                | Scheme::HammingX
                | Scheme::Bih
                | Scheme::FtcHc
                | Scheme::Bsc
                | Scheme::Dap
                | Scheme::Dapx
                | Scheme::Dapbi
                | Scheme::ExtHamming
                | Scheme::BchDec
                | Scheme::Sabotaged
        )
    }

    /// Whether the scheme can at least *detect* a single wire error
    /// (every correcting scheme detects; parity and duplication detect
    /// without correcting).
    #[must_use]
    pub fn detects_errors(self) -> bool {
        self.corrects_errors() || matches!(self, Scheme::Parity | Scheme::Duplication)
    }

    /// The full evaluated catalog: the Table III comparison set plus the
    /// detection/correction schemes the tables omit (`Duplication`,
    /// `Parity`, `ExtHamming`, `BCH-DEC`). This is the iteration set of
    /// the reliability and soak sweeps; the `Sabotaged` self-test scheme
    /// is deliberately excluded.
    #[must_use]
    pub fn catalog() -> Vec<Scheme> {
        let mut schemes = Scheme::table3();
        for extra in [
            Scheme::Duplication,
            Scheme::Parity,
            Scheme::ExtHamming,
            Scheme::BchDec,
        ] {
            if !schemes.contains(&extra) {
                schemes.push(extra);
            }
        }
        schemes
    }

    /// Every catalog scheme with single-error *correction* — the class
    /// the chaos monitors hold to the correction contract.
    #[must_use]
    pub fn correcting() -> Vec<Scheme> {
        Scheme::catalog()
            .into_iter()
            .filter(|s| s.corrects_errors())
            .collect()
    }

    /// Every catalog scheme with at least single-error *detection* — the
    /// class the no-silent-corruption monitor applies to.
    #[must_use]
    pub fn detecting() -> Vec<Scheme> {
        Scheme::catalog()
            .into_iter()
            .filter(|s| s.detects_errors())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::Word;

    #[test]
    fn table2_wire_counts_match_paper() {
        let expect = [
            (Scheme::Hamming, 7),
            (Scheme::HammingX, 8),
            (Scheme::Bih, 9),
            (Scheme::FtcHc, 14),
            (Scheme::Bsc, 9),
            (Scheme::Dap, 9),
            (Scheme::Dapx, 10),
            (Scheme::Dapbi, 11),
        ];
        for (s, wires) in expect {
            assert_eq!(s.build(4).wires(), wires, "{}", s.name());
        }
    }

    #[test]
    fn table3_wire_counts_match_paper() {
        let expect = [
            (Scheme::Uncoded, 32),
            (Scheme::BusInvert(1), 33),
            (Scheme::BusInvert(8), 40),
            (Scheme::Shielding, 63),
            (Scheme::Ftc, 53),
            (Scheme::Hamming, 38),
            (Scheme::HammingX, 41),
            (Scheme::Bih, 39),
            (Scheme::FtcHc, 65),
            (Scheme::Bsc, 65),
            (Scheme::Dap, 65),
            (Scheme::Dapx, 66),
            (Scheme::Dapbi, 67),
        ];
        for (s, wires) in expect {
            assert_eq!(s.build(32).wires(), wires, "{}", s.name());
        }
    }

    #[test]
    fn every_scheme_roundtrips() {
        for s in Scheme::table3() {
            let mut enc = s.build(8);
            let mut dec = s.build(8);
            for v in [0u128, 0xA5, 0xFF, 0x3C, 0x01] {
                let d = Word::from_bits(v, 8);
                assert_eq!(dec.decode(enc.encode(d)), d, "{}", s.name());
            }
        }
    }

    #[test]
    fn names_match_tables() {
        assert_eq!(Scheme::BusInvert(8).name(), "BI(8)");
        assert_eq!(Scheme::FtcHc.name(), "FTC+HC");
        assert_eq!(Scheme::Dapx.name(), "DAPX");
    }

    #[test]
    fn correction_capability() {
        assert!(Scheme::Dap.corrects_errors());
        assert!(Scheme::Hamming.corrects_errors());
        assert!(!Scheme::Uncoded.corrects_errors());
        assert!(!Scheme::Shielding.corrects_errors());
    }

    #[test]
    fn from_name_inverts_name_for_the_whole_catalog() {
        let mut all = Scheme::catalog();
        all.extend([Scheme::BusInvert(4), Scheme::Sabotaged]);
        for s in all {
            assert_eq!(Scheme::from_name(&s.name()), Some(s), "{}", s.name());
        }
        assert_eq!(Scheme::from_name("NoSuchCode"), None);
        assert_eq!(Scheme::from_name("BI(x)"), None);
    }

    #[test]
    fn catalog_classes_are_consistent() {
        let catalog = Scheme::catalog();
        assert!(
            catalog.len() >= 17,
            "table III set plus the four extras: {catalog:?}"
        );
        assert!(
            !catalog.contains(&Scheme::Sabotaged),
            "the planted-fault scheme must stay out of the catalog"
        );
        for s in Scheme::correcting() {
            assert!(s.corrects_errors() && s.detects_errors());
        }
        let detecting = Scheme::detecting();
        assert!(detecting.contains(&Scheme::Parity));
        assert!(detecting.contains(&Scheme::Duplication));
        assert!(!detecting.contains(&Scheme::Uncoded));
        // Detection strictly contains correction.
        assert!(detecting.len() > Scheme::correcting().len());
    }
}
