//! Code property analysis: the measurements behind the paper's tables.
//!
//! Given any [`BusCode`], this module derives the quantities the paper
//! tabulates — worst-case delay class, average energy coefficients,
//! minimum distance — and verifies the structural claims (FT/FP
//! conditions, error-correction capability). Stateless codes are analyzed
//! by exhaustive codeword-pair enumeration when `k` is small; stateful
//! codes (bus-invert family, BSC) are driven with long uniform random data
//! sequences, which is exactly the paper's "spatially and temporally
//! uncorrelated, equiprobable" workload assumption.

use crate::traits::BusCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_model::{bus_delay_factor, EnergyCoeff, TransitionVector, Word};

/// Largest `k` for which exhaustive pair enumeration (`4^k` transitions)
/// is attempted.
pub const EXHAUSTIVE_LIMIT: usize = 10;

/// The full codebook of a stateless code, in data order.
///
/// # Panics
///
/// Panics if the code is stateful or `k > 20`.
#[must_use]
pub fn codebook(code: &mut dyn BusCode) -> Vec<Word> {
    assert!(!code.is_stateful(), "codebook undefined for stateful codes");
    let k = code.data_bits();
    assert!(k <= 20, "codebook enumeration limited to k <= 20");
    Word::enumerate_all(k).map(|d| code.encode(d)).collect()
}

/// Minimum Hamming distance of a stateless code's codebook.
///
/// # Panics
///
/// Panics if the code is stateful, has fewer than two codewords, or
/// `k > 20`.
#[must_use]
pub fn min_distance(code: &mut dyn BusCode) -> u32 {
    let book = codebook(code);
    assert!(book.len() >= 2, "need at least two codewords");
    let mut min = u32::MAX;
    for i in 0..book.len() {
        for j in (i + 1)..book.len() {
            min = min.min(book[i].hamming_distance(book[j]));
        }
    }
    min
}

/// A random uniform data word of width `k`.
fn random_word(rng: &mut StdRng, k: usize) -> Word {
    Word::from_bits(rng.gen::<u128>(), k)
}

/// Worst-case bus delay factor observed over the code's transitions.
///
/// Stateless codes with `k ≤ EXHAUSTIVE_LIMIT` are checked exhaustively
/// (the result is then exact); otherwise `samples` random transitions are
/// simulated.
#[must_use]
pub fn worst_delay_factor(code: &mut dyn BusCode, lambda: f64, samples: usize) -> f64 {
    let k = code.data_bits();
    let mut worst: f64 = 0.0;
    if !code.is_stateful() && k <= EXHAUSTIVE_LIMIT {
        let book = codebook(code);
        for &b in &book {
            for &a in &book {
                let tv = TransitionVector::between(b, a);
                worst = worst.max(bus_delay_factor(&tv, lambda));
            }
        }
    } else {
        let mut rng = StdRng::seed_from_u64(0xD5_CAC);
        code.reset();
        let mut prev = code.encode(random_word(&mut rng, k));
        for _ in 0..samples {
            let cur = code.encode(random_word(&mut rng, k));
            let tv = TransitionVector::between(prev, cur);
            worst = worst.max(bus_delay_factor(&tv, lambda));
            prev = cur;
        }
        code.reset();
    }
    worst
}

/// Average bus energy coefficient per transfer under uniform random data.
///
/// Exact (full pair enumeration) for stateless codes with
/// `k ≤ EXHAUSTIVE_LIMIT`; otherwise a sequence of `samples` transfers is
/// simulated. The result is in the paper's table units: energy =
/// `(self + λ·coupling)·C·Vdd²`.
#[must_use]
pub fn average_energy(code: &mut dyn BusCode, samples: usize) -> EnergyCoeff {
    let k = code.data_bits();
    let mut acc = EnergyCoeff::default();
    if !code.is_stateful() && k <= EXHAUSTIVE_LIMIT {
        let book = codebook(code);
        for &b in &book {
            for &a in &book {
                acc = acc.add(socbus_model::word_transition_energy(b, a));
            }
        }
        acc.scale(1.0 / (book.len() * book.len()) as f64)
    } else {
        let mut rng = StdRng::seed_from_u64(0xE6E);
        code.reset();
        let mut prev = code.encode(random_word(&mut rng, k));
        for _ in 0..samples {
            let cur = code.encode(random_word(&mut rng, k));
            acc = acc.add(socbus_model::word_transition_energy(prev, cur));
            prev = cur;
        }
        code.reset();
        acc.scale(1.0 / samples as f64)
    }
}

/// Verifies `decode(encode(d)) == d` over random data (and all single-wire
/// corruptions when the code claims correction). Returns the number of
/// failures (0 = pass).
///
/// Encoder and a freshly `reset` decoder clone advance in lockstep, which
/// assumes the decoder state does not depend on received *values* (true
/// for every code in this crate: BSC tracks only the cycle phase, BI's
/// decoder is stateless).
#[must_use]
pub fn verify_roundtrip<C: BusCode + Clone>(code: &C, trials: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut enc = code.clone();
    let mut dec = code.clone();
    enc.reset();
    dec.reset();
    let k = enc.data_bits();
    let t = enc.correctable_errors();
    let mut failures = 0;
    for _ in 0..trials {
        let d = random_word(&mut rng, k);
        let cw = enc.encode(d);
        let mut bad = cw;
        if t > 0 {
            let wire = rng.gen_range(0..bad.width());
            bad.set_bit(wire, !bad.bit(wire));
        }
        if dec.decode(bad) != d {
            failures += 1;
        }
    }
    failures
}

/// Average number of switching wires per transfer (self-transition
/// activity) under uniform random data — `2 × self_coeff`.
#[must_use]
pub fn average_activity(code: &mut dyn BusCode, samples: usize) -> f64 {
    2.0 * average_energy(code, samples).self_coeff
}

/// *Exact* average energy coefficient of the `BI(1)` bus-invert code, via
/// its Markov chain: the bus word `(y, inv)` is a finite-state chain under
/// uniform data (the encoder state is the `y` lines of the last output),
/// so the stationary distribution — and from it the exact expectation the
/// sampled estimate approaches — is computable in closed form for small
/// `k`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 12` (the chain has `2^(k+1)` states).
#[must_use]
pub fn bus_invert_exact_energy(k: usize) -> EnergyCoeff {
    assert!((1..=12).contains(&k), "exact BI chain limited to k <= 12");
    let states = 1usize << (k + 1); // output word (y, inv)
    let inputs = 1usize << k;
    let p_in = 1.0 / inputs as f64;
    // next_output(y_prev, d) is independent of the previous invert bit.
    let next = |y_prev: usize, d: usize| -> usize {
        let toggles = ((y_prev ^ d) as u64).count_ones() as usize;
        if 2 * toggles > k {
            (!d & (inputs - 1)) | (1 << k)
        } else {
            d
        }
    };
    // Power-iterate the stationary distribution.
    let mut pi = vec![1.0 / states as f64; states];
    for _ in 0..200 {
        let mut nxt = vec![0.0; states];
        for (s, &w) in pi.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let y_prev = s & (inputs - 1);
            for d in 0..inputs {
                nxt[next(y_prev, d)] += w * p_in;
            }
        }
        pi = nxt;
    }
    // Expected transition energy from the stationary state.
    let mut acc = EnergyCoeff::default();
    for (s, &w) in pi.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        let from = Word::from_bits(s as u128, k + 1);
        let y_prev = s & (inputs - 1);
        for d in 0..inputs {
            let to = Word::from_bits(next(y_prev, d) as u128, k + 1);
            acc = acc.add(socbus_model::word_transition_energy(from, to).scale(w * p_in));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cac::{Duplication, Shielding};
    use crate::ecc::Hamming;
    use crate::joint::{Bsc, Dap};
    use crate::lpc::BusInvert;
    use crate::traits::Uncoded;

    #[test]
    fn uncoded_energy_matches_closed_form() {
        let mut c = Uncoded::new(6);
        let e = average_energy(&mut c, 0);
        let expect = socbus_model::energy::uncoded_average_coeff(6);
        assert!((e.self_coeff - expect.self_coeff).abs() < 1e-12);
        assert!((e.coupling_coeff - expect.coupling_coeff).abs() < 1e-12);
    }

    #[test]
    fn hamming_4bit_energy_matches_table2() {
        // Table II: Hamming row 1.75 + 3.00λ.
        let mut c = Hamming::new(4);
        let e = average_energy(&mut c, 0);
        assert!((e.self_coeff - 1.75).abs() < 1e-12, "{}", e.self_coeff);
        assert!(
            (e.coupling_coeff - 3.0).abs() < 1e-12,
            "{}",
            e.coupling_coeff
        );
    }

    #[test]
    fn worst_delay_factors() {
        let lambda = 2.8;
        assert!(
            (worst_delay_factor(&mut Uncoded::new(4), lambda, 0) - (1.0 + 4.0 * lambda)).abs()
                < 1e-12
        );
        assert!(
            worst_delay_factor(&mut Shielding::new(4), lambda, 0) <= 1.0 + 2.0 * lambda + 1e-12
        );
        assert!(
            worst_delay_factor(&mut Duplication::new(4), lambda, 0) <= 1.0 + 2.0 * lambda + 1e-12
        );
        assert!(worst_delay_factor(&mut Dap::new(4), lambda, 0) <= 1.0 + 2.0 * lambda + 1e-12);
    }

    #[test]
    fn stateful_worst_delay_sampled() {
        let lambda = 2.0;
        let f = worst_delay_factor(&mut Bsc::new(4), lambda, 5000);
        assert!(f <= 1.0 + 2.0 * lambda + 1e-12, "BSC factor {f}");
        let f = worst_delay_factor(&mut BusInvert::new(8, 1), lambda, 5000);
        assert!(f <= 1.0 + 4.0 * lambda + 1e-12);
    }

    #[test]
    fn min_distance_values() {
        assert_eq!(min_distance(&mut Uncoded::new(4)), 1);
        assert_eq!(min_distance(&mut Duplication::new(4)), 2);
        assert_eq!(min_distance(&mut Hamming::new(4)), 3);
        assert_eq!(min_distance(&mut Dap::new(4)), 3);
    }

    #[test]
    fn roundtrip_harness_passes_for_all_simple_codes() {
        assert_eq!(verify_roundtrip(&Uncoded::new(8), 200, 1), 0);
        assert_eq!(verify_roundtrip(&Hamming::new(8), 200, 2), 0);
        assert_eq!(verify_roundtrip(&Dap::new(8), 200, 3), 0);
        assert_eq!(verify_roundtrip(&Bsc::new(8), 200, 4), 0);
        assert_eq!(verify_roundtrip(&BusInvert::new(8, 2), 200, 5), 0);
    }

    #[test]
    fn bus_invert_activity_is_reduced() {
        let uncoded = average_activity(&mut Uncoded::new(8), 0);
        let bi = average_activity(&mut BusInvert::new(8, 1), 20000);
        assert!(bi < uncoded, "BI activity {bi} vs uncoded {uncoded}");
    }

    #[test]
    #[should_panic(expected = "stateful")]
    fn codebook_rejects_stateful() {
        let _ = codebook(&mut BusInvert::new(4, 1));
    }

    #[test]
    fn exact_bi_energy_matches_sampled() {
        for k in [4usize, 8] {
            let exact = bus_invert_exact_energy(k);
            let sampled = average_energy(&mut BusInvert::new(k, 1), 150_000);
            assert!(
                (exact.self_coeff - sampled.self_coeff).abs() < 0.05,
                "k={k}: self exact {} vs sampled {}",
                exact.self_coeff,
                sampled.self_coeff
            );
            assert!(
                (exact.coupling_coeff - sampled.coupling_coeff).abs() < 0.08,
                "k={k}: coupling exact {} vs sampled {}",
                exact.coupling_coeff,
                sampled.coupling_coeff
            );
        }
    }

    #[test]
    fn exact_bi_energy_beats_uncoded_self_activity() {
        // BI(1)'s whole point: the exact self coefficient sits strictly
        // below the uncoded k/4 despite the invert wire.
        let e = bus_invert_exact_energy(8);
        assert!(e.self_coeff < 8.0 / 4.0 + 0.25, "self {}", e.self_coeff);
        // And strictly below uncoded-with-one-extra-wire (9/4), which a
        // code that did nothing would match.
        assert!(e.self_coeff < 9.0 / 4.0, "self {}", e.self_coeff);
    }
}
