//! Memoized codebook kernels: build every CAC codebook once per
//! process, decode in O(1).
//!
//! The Fibonacci codebooks behind [`crate::ForbiddenPatternCode`] and
//! [`crate::ForbiddenTransitionCode`] are pure functions of their wire
//! count, yet the pre-kernel implementation re-enumerated them for every
//! encoder *and* decoder — twice per Monte-Carlo estimate and once per
//! 65 536-trial shard — and decoded by linear scan with an O(|book|)
//! nearest-codeword fallback on every corrupted word. This module fixes
//! both ends:
//!
//! * **Process-wide caches.** Raw codebook enumeration (`fp`/`ft` per
//!   wire count) and finished [`CodebookKernel`]s (per [`BookKey`]) are
//!   memoized behind `OnceLock<Mutex<HashMap>>`; a build happens at most
//!   once per key for the process lifetime, whatever the shard or thread
//!   count. [`codebook_builds`] exposes the global build counter so
//!   tests can pin the O(schemes)-not-O(shards) property.
//! * **O(1) decode.** Buses of at most [`DENSE_MAX_WIRES`] wires get a
//!   dense inverse table: `table[bus] = nearest codeword index`, built
//!   by a multi-source BFS over the hypercube in O(2ʷ·w). Wider buses
//!   fall back to binary search on the (ascending) codebook for the
//!   exact match plus a distance-1 neighborhood probe, with a linear
//!   scan only for the rare weight ≥ 2 corruption.
//!
//! Every decode path — dense table, sparse search, and the reference
//! [`CodebookKernel::decode_index_scan`] — resolves nearest-codeword
//! ties identically: **lowest codebook index wins** (the first minimum
//! a linear scan encounters). The equivalence tests in
//! `crates/codes/tests/decode_equiv.rs` verify this exhaustively.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use socbus_model::Word;

/// Widest bus that gets a dense `2^wires`-entry inverse table (64 Ki
/// entries, 128 KiB). Above this, kernels use sorted-book binary search.
pub const DENSE_MAX_WIRES: usize = 16;

/// Identity of one memoized decode kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BookKey {
    /// Single-group FPC over `k` data bits: the first `2^k` forbidden-
    /// pattern words on [`crate::cac::fpc_wires_for_bits`]`(k)` wires.
    Fpc {
        /// Data bits.
        k: usize,
    },
    /// One FTC sub-bus group: the first `2^bits` forbidden-transition
    /// codewords on `wires` wires.
    FtcGroup {
        /// Data bits carried by the group.
        bits: usize,
        /// Wires of the group (≤ 6; the exact clique search bound).
        wires: usize,
    },
}

/// How a kernel maps a received bus word to a codebook index.
#[derive(Debug, PartialEq, Eq)]
enum DecodeIndex {
    /// `table[bus.bits()]` is the nearest codeword's index
    /// (lowest-index tie-break); exactness is one codeword compare.
    Dense(Vec<u16>),
    /// Binary search on the ascending codebook; nearest fallback probes
    /// the distance-1 neighborhood before scanning.
    Sparse,
}

/// A codebook plus its precomputed inverse: the shared, immutable part
/// of an FPC codec or FTC sub-bus group. Obtained via [`codebook_kernel`]
/// and held by `Arc`, so any number of encoder/decoder instances share
/// one build.
#[derive(Debug, PartialEq, Eq)]
pub struct CodebookKernel {
    wires: usize,
    /// Data-index order; ascending by construction (the enumerations
    /// yield ascending words and truncation preserves order), which the
    /// sparse path's binary search relies on.
    book: Vec<Word>,
    /// `book` as raw bit patterns (kernels never exceed 24 wires), so the
    /// raw hot path skips `Word` construction entirely.
    book_bits: Vec<u128>,
    index: DecodeIndex,
}

impl CodebookKernel {
    fn build(key: BookKey) -> CodebookKernel {
        let (wires, book) = match key {
            BookKey::Fpc { k } => {
                assert!((1..=16).contains(&k), "FPC kernels support 1..=16 bits");
                let wires = crate::cac::fpc_wires_for_bits(k);
                let book: Vec<Word> = fp_book(wires).iter().copied().take(1 << k).collect();
                (wires, book)
            }
            BookKey::FtcGroup { bits, wires } => {
                assert!(
                    (1..=6).contains(&wires),
                    "FTC group kernels support 1..=6 wires"
                );
                let book: Vec<Word> = ft_book(wires).iter().copied().take(1 << bits).collect();
                assert!(book.len() == 1 << bits, "codebook too small for group");
                (wires, book)
            }
        };
        debug_assert!(book.windows(2).all(|w| w[0] < w[1]), "book must ascend");
        let index = if wires <= DENSE_MAX_WIRES {
            DecodeIndex::Dense(dense_table(&book, wires))
        } else {
            DecodeIndex::Sparse
        };
        let book_bits = book.iter().map(|w| w.bits()).collect();
        CodebookKernel {
            wires,
            book,
            book_bits,
            index,
        }
    }

    /// The codebook in data-index order.
    #[must_use]
    pub fn book(&self) -> &[Word] {
        &self.book
    }

    /// Bus wires the kernel decodes.
    #[must_use]
    pub fn wires(&self) -> usize {
        self.wires
    }

    /// Decodes `bus` to `(codebook index, exact)`: the index of the
    /// exact-matching codeword, or — when `bus` is not a codeword
    /// (`exact == false`) — of the nearest codeword by Hamming
    /// distance, lowest index on ties.
    #[must_use]
    pub fn decode_index(&self, bus: Word) -> (usize, bool) {
        debug_assert_eq!(bus.width(), self.wires, "bus width mismatch");
        match &self.index {
            DecodeIndex::Dense(table) => {
                #[allow(clippy::cast_possible_truncation)]
                let idx = table[bus.bits() as usize] as usize;
                (idx, self.book[idx] == bus)
            }
            DecodeIndex::Sparse => {
                if let Ok(idx) = self.book.binary_search(&bus) {
                    return (idx, true);
                }
                // Distance-1 probe: nearly all corrupted words in the
                // noise regimes we simulate are one flip away from a
                // codeword. Collect every distance-1 hit and keep the
                // lowest index (== lowest value: the book ascends).
                let mut best: Option<usize> = None;
                for w in 0..self.wires {
                    let cand = bus.with_bit(w, !bus.bit(w));
                    if let Ok(idx) = self.book.binary_search(&cand) {
                        best = Some(best.map_or(idx, |b| b.min(idx)));
                    }
                }
                if let Some(idx) = best {
                    return (idx, false);
                }
                // Weight ≥ 2 from every codeword: rare; full scan.
                self.decode_index_scan(bus)
            }
        }
    }

    /// [`CodebookKernel::decode_index`] on the raw bit pattern of a
    /// received slice — the allocation-free hot path FTC's per-group
    /// decode uses (one table load + one integer compare on the dense
    /// path, no `Word` round-trip).
    #[must_use]
    pub fn decode_index_raw(&self, raw: u128) -> (usize, bool) {
        match &self.index {
            DecodeIndex::Dense(table) => {
                #[allow(clippy::cast_possible_truncation)]
                let idx = table[raw as usize] as usize;
                (idx, self.book_bits[idx] == raw)
            }
            DecodeIndex::Sparse => self.decode_index(Word::from_bits(raw, self.wires)),
        }
    }

    /// Codeword `idx` as its raw bit pattern (the encode-side hot path).
    #[must_use]
    pub fn codeword_bits(&self, idx: usize) -> u128 {
        self.book_bits[idx]
    }

    /// The reference decoder the kernels replace: linear scan for the
    /// exact match, then a first-minimum (= lowest-index) nearest-
    /// codeword scan. Kept callable so the equivalence tests and the
    /// `bench --bin codec` baseline can compare against it.
    #[must_use]
    pub fn decode_index_scan(&self, bus: Word) -> (usize, bool) {
        debug_assert_eq!(bus.width(), self.wires, "bus width mismatch");
        if let Some(idx) = self.book.iter().position(|&cw| cw == bus) {
            return (idx, true);
        }
        let idx = self
            .book
            .iter()
            .enumerate()
            .min_by_key(|(_, &cw)| cw.hamming_distance(bus))
            .map(|(i, _)| i)
            .expect("non-empty codebook");
        (idx, false)
    }
}

/// Builds the dense inverse table by multi-source BFS over the `wires`-
/// dimensional hypercube: every bus value gets the index of its nearest
/// codeword with the lowest-index tie-break, in O(2ʷ·w) instead of the
/// naive O(2ʷ·|book|) distance matrix.
///
/// Layered relaxation keeps the tie-break exact: nodes settled at
/// distance `d` propagate `min(index)` into the distance-`d+1` layer, and
/// for any bus word `v` at distance `d+1` the true minimal index is
/// reachable through a distance-`d` neighbor (flip one differing bit of
/// the witness codeword), so the per-layer minimum equals the global
/// lexicographic `(distance, index)` minimum a linear scan would pick.
fn dense_table(book: &[Word], wires: usize) -> Vec<u16> {
    assert!(wires <= DENSE_MAX_WIRES, "dense table too wide");
    assert!(
        book.len() <= u16::MAX as usize + 1,
        "book exceeds u16 index"
    );
    let size = 1usize << wires;
    let mut dist = vec![u8::MAX; size];
    let mut table = vec![0u16; size];
    let mut frontier: Vec<usize> = Vec::with_capacity(book.len());
    for (i, cw) in book.iter().enumerate() {
        #[allow(clippy::cast_possible_truncation)]
        let v = cw.bits() as usize;
        dist[v] = 0;
        #[allow(clippy::cast_possible_truncation)]
        {
            table[v] = i as u16;
        }
        frontier.push(v);
    }
    let mut d = 0u8;
    while !frontier.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for &u in &frontier {
            for b in 0..wires {
                let v = u ^ (1 << b);
                if dist[v] == u8::MAX {
                    dist[v] = d + 1;
                    table[v] = table[u];
                    next.push(v);
                } else if dist[v] == d + 1 && table[u] < table[v] {
                    table[v] = table[u];
                }
            }
        }
        frontier = next;
        d += 1;
    }
    table
}

/// Raw (un-truncated, un-indexed) codebook caches, keyed by wire count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum RawKey {
    Fp(usize),
    Ft(usize),
}

static RAW_BOOKS: OnceLock<Mutex<HashMap<RawKey, Arc<Vec<Word>>>>> = OnceLock::new();
static KERNELS: OnceLock<Mutex<HashMap<BookKey, Arc<CodebookKernel>>>> = OnceLock::new();
static BUILDS: AtomicU64 = AtomicU64::new(0);

fn raw_book(key: RawKey, build: impl FnOnce() -> Vec<Word>) -> Arc<Vec<Word>> {
    let cache = RAW_BOOKS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("codebook cache poisoned");
    map.entry(key)
        .or_insert_with(|| {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            Arc::new(build())
        })
        .clone()
}

/// The memoized full FP codebook on `wires` wires (ascending). Shared
/// backing store of [`crate::cac::fpc_codebook`] and the FPC kernels:
/// the enumeration runs at most once per wire count per process.
///
/// The width guard runs *before* the cache lock so an invalid request
/// panics without poisoning the process-wide cache.
pub(crate) fn fp_book(wires: usize) -> Arc<Vec<Word>> {
    assert!(
        (1..=24).contains(&wires),
        "fpc_codebook supports 1..=24 wires"
    );
    raw_book(RawKey::Fp(wires), || crate::cac::enumerate_fp_book(wires))
}

/// The memoized maximum FT codebook on `wires` wires (ascending). The
/// exact clique search runs at most once per wire count per process.
///
/// The width guard runs *before* the cache lock so an invalid request
/// panics without poisoning the process-wide cache.
pub(crate) fn ft_book(wires: usize) -> Arc<Vec<Word>> {
    assert!(
        (1..=6).contains(&wires),
        "ftc_codebook supports 1..=6 wires"
    );
    raw_book(RawKey::Ft(wires), || crate::cac::search_ft_book(wires))
}

/// The process-wide kernel for `key`: built on first request (the build
/// is counted by [`codebook_builds`]), shared by reference afterwards.
/// Any number of codec instances — encoder and decoder of every shard of
/// every sweep — hold the same `Arc`.
#[must_use]
pub fn codebook_kernel(key: BookKey) -> Arc<CodebookKernel> {
    // Validate before locking: a panic inside the build closure would
    // poison the process-wide cache for every later caller.
    match key {
        BookKey::Fpc { k } => {
            assert!((1..=16).contains(&k), "FPC kernels support 1..=16 bits");
        }
        BookKey::FtcGroup { bits, wires } => {
            assert!(
                (1..=6).contains(&wires),
                "FTC group kernels support 1..=6 wires"
            );
            assert!(bits >= 1, "FTC group needs at least one bit");
            // |FT(n)| = F(n+2): reject an over-packed group before the
            // build (the same check the clique search would fail).
            const FT_BOOK_LEN: [usize; 7] = [0, 2, 3, 5, 8, 13, 21];
            assert!(
                1usize << bits <= FT_BOOK_LEN[wires],
                "codebook too small for group"
            );
        }
    }
    let cache = KERNELS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("kernel cache poisoned");
    map.entry(key)
        .or_insert_with(|| {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            Arc::new(CodebookKernel::build(key))
        })
        .clone()
}

/// Total expensive constructions (raw codebook enumerations plus kernel
/// index builds) performed by this process. Because both caches build
/// at most once per key, this number is bounded by the count of
/// *distinct* keys ever requested — never by shard, trial, or codec
/// instance counts. The Monte-Carlo cache test and `bench --bin codec`
/// report it.
#[must_use]
pub fn codebook_builds() -> u64 {
    BUILDS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_shared_not_rebuilt() {
        let a = codebook_kernel(BookKey::FtcGroup { bits: 3, wires: 4 });
        let builds = codebook_builds();
        let b = codebook_kernel(BookKey::FtcGroup { bits: 3, wires: 4 });
        assert!(Arc::ptr_eq(&a, &b), "same key must share one kernel");
        assert_eq!(
            codebook_builds(),
            builds,
            "a cache hit must not build anything"
        );
    }

    #[test]
    fn dense_table_matches_scan_exhaustively() {
        for key in [
            BookKey::Fpc { k: 4 },
            BookKey::FtcGroup { bits: 3, wires: 4 },
            BookKey::FtcGroup { bits: 2, wires: 3 },
            BookKey::FtcGroup { bits: 4, wires: 6 },
        ] {
            let kernel = codebook_kernel(key);
            for bus in Word::enumerate_all(kernel.wires()) {
                assert_eq!(
                    kernel.decode_index(bus),
                    kernel.decode_index_scan(bus),
                    "{key:?} disagrees on {bus}"
                );
            }
        }
    }

    #[test]
    fn sparse_path_matches_scan_on_probes() {
        // FPC over 16 bits lives on 23 wires: the sparse path. Exact
        // codewords, single flips, and heavier corruption must all agree
        // with the scan reference.
        let kernel = codebook_kernel(BookKey::Fpc { k: 16 });
        assert!(kernel.wires() > DENSE_MAX_WIRES);
        for (i, &cw) in kernel.book().iter().enumerate().step_by(997) {
            assert_eq!(kernel.decode_index(cw), (i, true));
            for w in [0, kernel.wires() / 2, kernel.wires() - 1] {
                let flipped = cw.with_bit(w, !cw.bit(w));
                assert_eq!(
                    kernel.decode_index(flipped),
                    kernel.decode_index_scan(flipped),
                    "codeword {i} flip {w}"
                );
            }
            let double = cw.with_bit(1, !cw.bit(1)).with_bit(4, !cw.bit(4));
            assert_eq!(
                kernel.decode_index(double),
                kernel.decode_index_scan(double),
                "codeword {i} double flip"
            );
        }
    }

    #[test]
    #[should_panic(expected = "FTC group kernels support 1..=6 wires")]
    fn oversized_ftc_group_is_rejected() {
        let _ = CodebookKernel::build(BookKey::FtcGroup { bits: 5, wires: 7 });
    }
}
