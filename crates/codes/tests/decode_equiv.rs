//! LUT-vs-scan decode equivalence and the pinned tie-break contract.
//!
//! The inverse decode tables in `socbus_codes::kernels` replace the
//! linear scans in FPC and FTC; they must be *observationally identical*
//! — same index for every possible received bus word, including the
//! nearest-codeword fallback with its **lowest-codebook-index** tie-break
//! (the first minimum a linear scan encounters). These tests pin that
//! contract:
//!
//! * exhaustively over all `2^wires` received words for every bus that
//!   fits in the dense-table regime (≤ 16 wires),
//! * by regression on hand-picked *equidistant* corrupted words,
//! * by proptest on the wide (sparse-path) buses where exhaustion is
//!   impossible.

use proptest::prelude::*;
use socbus_codes::{BusCode, DecodeStatus, ForbiddenPatternCode, ForbiddenTransitionCode, Scheme};
use socbus_model::Word;

/// All received bus words for every dense-regime single-group FPC: the
/// table decoder and the scan reference must agree bit for bit.
#[test]
fn fpc_lut_equals_scan_exhaustively() {
    // k = 11 is the widest FPC on <= 16 wires (12 bits need 17).
    for k in 1..=11 {
        let mut c = ForbiddenPatternCode::new(k);
        assert!(c.wires() <= 16, "k={k} left the dense regime");
        for bus in Word::enumerate_all(c.wires()) {
            assert_eq!(c.decode(bus), c.decode_scan(bus), "k={k} bus={bus}");
        }
    }
}

/// All received bus words for every FTC whose full bus (groups + shields)
/// fits in 16 wires — this exercises the per-group kernels *and* the
/// group/shield slicing around them.
#[test]
fn ftc_lut_equals_scan_exhaustively() {
    for k in 1..=9 {
        let mut c = ForbiddenTransitionCode::new(k);
        if c.wires() > 16 {
            continue;
        }
        for bus in Word::enumerate_all(c.wires()) {
            assert_eq!(c.decode(bus), c.decode_scan(bus), "k={k} bus={bus}");
        }
    }
}

/// `decode_checked` must report `Clean` exactly on codebook membership
/// and `Detected` otherwise, and its data word must equal `decode`'s.
#[test]
fn fpc_checked_status_is_membership() {
    for k in 1..=8 {
        let mut c = ForbiddenPatternCode::new(k);
        let book: Vec<Word> = c.codebook().to_vec();
        for bus in Word::enumerate_all(c.wires()) {
            let (data, status) = c.decode_checked(bus);
            assert_eq!(data, c.decode(bus), "k={k} bus={bus}");
            let member = book.contains(&bus);
            assert_eq!(
                status,
                if member {
                    DecodeStatus::Clean
                } else {
                    DecodeStatus::Detected
                },
                "k={k} bus={bus}"
            );
        }
    }
}

/// For FTC, "codeword" means every group slice is in its book *and*
/// every shield wire is grounded.
#[test]
fn ftc_checked_status_is_membership() {
    for k in [1usize, 2, 3, 4, 5, 6, 7] {
        let mut c = ForbiddenTransitionCode::new(k);
        if c.wires() > 16 {
            continue;
        }
        // The valid codewords are exactly the encodings of all data words.
        let valid: Vec<Word> = Word::enumerate_all(k).map(|d| c.encode(d)).collect();
        for bus in Word::enumerate_all(c.wires()) {
            let (data, status) = c.decode_checked(bus);
            assert_eq!(data, c.decode(bus), "k={k} bus={bus}");
            let member = valid.contains(&bus);
            assert_eq!(
                status,
                if member {
                    DecodeStatus::Clean
                } else {
                    DecodeStatus::Detected
                },
                "k={k} bus={bus}"
            );
        }
    }
}

/// Tie-break regression, hand-computed: FPC(3) lives on 4 wires with
/// codebook `[0000, 0001, 0011, 0110, 0111, 1000, 1001, 1100]` (the
/// first 8 forbidden-pattern words, ascending; wire 0 is bit 0). The
/// received word `0101` is at distance 1 from both index 1 (`0001`, flip
/// wire 2) and index 4 (`0111`, flip wire 1); the pinned contract picks
/// the **lowest index**, so it must decode to data `001`.
#[test]
fn fpc_equidistant_word_takes_lowest_index() {
    let mut c = ForbiddenPatternCode::new(3);
    assert_eq!(c.wires(), 4);
    let book: Vec<u128> = c.codebook().iter().map(|w| w.bits()).collect();
    assert_eq!(
        book,
        vec![0b0000, 0b0001, 0b0011, 0b0110, 0b0111, 0b1000, 0b1001, 0b1100]
    );
    let received = Word::from_bits(0b0101, 4);
    assert_eq!(c.decode(received), Word::from_bits(1, 3));
    assert_eq!(c.decode_scan(received), Word::from_bits(1, 3));
    let (data, status) = c.decode_checked(received);
    assert_eq!(data, Word::from_bits(1, 3));
    assert_eq!(status, DecodeStatus::Detected);
}

/// The same property found mechanically for FTC: every received word
/// whose nearest-codeword distance is attained by *several* codebook
/// entries must resolve to the lowest such index — in both decoders.
#[test]
fn ftc_equidistant_words_take_lowest_index() {
    let mut c = ForbiddenTransitionCode::new(3); // one (3, 4) group, no shields
    assert_eq!(c.wires(), 4);
    let book: Vec<Word> = Word::enumerate_all(3).map(|d| c.encode(d)).collect();
    let mut saw_tie = false;
    for bus in Word::enumerate_all(4) {
        let dists: Vec<u32> = book.iter().map(|cw| cw.hamming_distance(bus)).collect();
        let best = *dists.iter().min().expect("non-empty book");
        let lowest = dists.iter().position(|&d| d == best).expect("has min");
        if dists.iter().filter(|&&d| d == best).count() > 1 {
            saw_tie = true;
        }
        let want = Word::from_bits(lowest as u128, 3);
        assert_eq!(c.decode(bus), want, "bus={bus}");
        assert_eq!(c.decode_scan(bus), want, "bus={bus}");
    }
    assert!(saw_tie, "the 4-wire bus must contain equidistant words");
}

/// Every catalog scheme whose bus fits the dense regime: `decode` must be
/// a pure function (same word twice -> same answer) that agrees with a
/// fresh instance's decoder, for clean and corrupted words alike. This
/// catches any kernel-sharing bug that leaks state between instances.
#[test]
fn catalog_decoders_are_pure_and_instance_independent() {
    // k = 8 keeps most of the catalog inside the 16-wire dense regime;
    // k = 16 is the soak campaign's width (BI(8) needs k >= 8, so no 4).
    for k in [8usize, 16] {
        for scheme in Scheme::catalog() {
            let mut a = scheme.build(k);
            if a.wires() > 16 {
                continue;
            }
            let mut b = scheme.build(k);
            for d in Word::enumerate_all(k).step_by(3) {
                let cw = a.encode(d);
                for wire in 0..cw.width() {
                    let bad = cw.with_bit(wire, !cw.bit(wire));
                    let first = a.decode(bad);
                    assert_eq!(a.decode(bad), first, "{scheme:?} k={k} repeat");
                    assert_eq!(b.decode(bad), first, "{scheme:?} k={k} instance");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wide-bus FPC (23 wires at k = 16: the sparse kernel path): LUT and
    /// scan agree on random codewords corrupted by 0..=3 random flips.
    #[test]
    fn fpc_sparse_matches_scan(idx in any::<u32>(), flips in prop::collection::vec(any::<usize>(), 0..=3)) {
        let mut c = ForbiddenPatternCode::new(16);
        prop_assert!(c.wires() > 16);
        let cw = c.codebook()[idx as usize % (1 << 16)];
        let mut bus = cw;
        for f in flips {
            let w = f % c.wires();
            bus.set_bit(w, !bus.bit(w));
        }
        prop_assert_eq!(c.decode(bus), c.decode_scan(bus));
    }

    /// Full-width FTC (53 wires at k = 32, eleven groups): group slicing
    /// plus kernels agree with the scan reference under random corruption.
    #[test]
    fn ftc_wide_matches_scan(data in any::<u64>(), flips in prop::collection::vec(any::<usize>(), 0..=4)) {
        let mut c = ForbiddenTransitionCode::new(32);
        prop_assert_eq!(c.wires(), 53);
        let d = Word::from_bits(u128::from(data) & 0xFFFF_FFFF, 32);
        let mut bus = c.encode(d);
        for f in flips {
            let w = f % c.wires();
            bus.set_bit(w, !bus.bit(w));
        }
        prop_assert_eq!(c.decode(bus), c.decode_scan(bus));
    }
}
