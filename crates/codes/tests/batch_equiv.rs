//! Batch-vs-scalar equivalence: the contract that lets the Monte-Carlo
//! hot loops run on the bit-sliced [`socbus_codes::batch`] codecs while
//! reproducing the scalar estimates byte for byte.
//!
//! For every catalog scheme, feeding a block of words through the batch
//! codec must equal feeding the same words one at a time (in block
//! order) through the scalar codec from the same starting state — for
//! `encode`, `decode`, and `decode_checked` (data *and* per-word
//! status), across full and partial blocks, corrupted and clean, and
//! across consecutive blocks (stateful codecs carry state over block
//! boundaries). Exhaustive over all received bus words for the small
//! widths, proptest over random widths, data, and noise for the rest;
//! transpose ∘ untranspose = id is pinned separately.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_codes::{batch_build, batch_is_native, Scheme, WordBlock, BLOCK_WORDS};
use socbus_model::Word;

/// A deterministic pseudo-random word of the given width (full 256-bit
/// range, not just the `u128` span).
fn random_word(rng: &mut StdRng, width: usize) -> Word {
    let mut w = Word::zero(width);
    for i in 0..width {
        w.set_bit(i, rng.gen::<f64>() < 0.5);
    }
    w
}

/// Runs `blocks` through fresh batch and scalar codec pairs and asserts
/// encode, decode, and decode_checked agree word for word, including on
/// versions of the coded blocks corrupted with flip probability `noise`.
fn assert_blocks_equiv(scheme: Scheme, k: usize, blocks: &[Vec<Word>], noise: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Independent codec instances per operation, mirroring how the
    // Monte-Carlo loop keeps encoder and decoder state separate.
    let mut b_enc = batch_build(scheme, k);
    let mut s_enc = scheme.build(k);
    let mut b_dec = batch_build(scheme, k);
    let mut s_dec = scheme.build(k);
    let mut b_chk = batch_build(scheme, k);
    let mut s_chk = scheme.build(k);
    assert_eq!(b_enc.name(), s_enc.name());
    assert_eq!(b_enc.data_bits(), s_enc.data_bits());
    assert_eq!(b_enc.wires(), s_enc.wires());
    for words in blocks {
        let data = WordBlock::from_words(words);
        let coded = b_enc.encode(&data);
        let scalar_coded: Vec<Word> = words.iter().map(|&w| s_enc.encode(w)).collect();
        assert_eq!(
            coded.to_words(),
            scalar_coded,
            "{} k={k} encode diverged",
            scheme.name()
        );
        // Corrupt the scalar codewords, then re-transpose: both paths
        // decode the identical received sequence.
        let received: Vec<Word> = scalar_coded
            .iter()
            .map(|&w| {
                let mut r = w;
                for i in 0..r.width() {
                    if rng.gen::<f64>() < noise {
                        r.set_bit(i, !r.bit(i));
                    }
                }
                r
            })
            .collect();
        let received_block = WordBlock::from_words(&received);
        let out = b_dec.decode(&received_block);
        let scalar_out: Vec<Word> = received.iter().map(|&w| s_dec.decode(w)).collect();
        assert_eq!(
            out.to_words(),
            scalar_out,
            "{} k={k} decode diverged",
            scheme.name()
        );
        let (chk, status) = b_chk.decode_checked(&received_block);
        let chk_words = chk.to_words();
        for (j, &w) in received.iter().enumerate() {
            let (s_data, s_status) = s_chk.decode_checked(w);
            assert_eq!(
                chk_words[j],
                s_data,
                "{} k={k} decode_checked data diverged at word {j}",
                scheme.name()
            );
            assert_eq!(
                status.status(j),
                s_status,
                "{} k={k} decode_checked status diverged at word {j}",
                scheme.name()
            );
        }
    }
}

/// Block shapes covering the remainder cases: full, single-word, odd
/// partial, and a follow-up block so stateful codecs cross a boundary.
fn block_shapes(rng: &mut StdRng, k: usize) -> Vec<Vec<Word>> {
    [BLOCK_WORDS, 1, 7, 33, BLOCK_WORDS]
        .iter()
        .map(|&len| (0..len).map(|_| random_word(rng, k)).collect())
        .collect()
}

/// Every catalog scheme at the paper's 8-bit bus width, clean and noisy.
#[test]
fn catalog_batch_equals_scalar_at_k8() {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for scheme in Scheme::catalog() {
        let blocks = block_shapes(&mut rng, 8);
        assert_blocks_equiv(scheme, 8, &blocks, 0.0, 1);
        assert_blocks_equiv(scheme, 8, &blocks, 0.08, 2);
    }
}

/// The native bit-sliced schemes across widths, including limb-crossing
/// and >128-wire buses where `Word::bits()` would refuse.
#[test]
fn native_schemes_batch_equals_scalar_across_widths() {
    let mut rng = StdRng::seed_from_u64(0xBA7D);
    let cases: Vec<(Scheme, Vec<usize>)> = vec![
        (Scheme::Parity, vec![1, 2, 13, 64, 65, 127]),
        (Scheme::Hamming, vec![1, 4, 11, 32, 57]),
        (Scheme::ExtHamming, vec![1, 4, 26, 57]),
        (Scheme::Dap, vec![1, 2, 31, 63, 64]), // DAP(64): 129 wires
        (Scheme::Shielding, vec![1, 2, 64, 128]),
        (Scheme::Duplication, vec![1, 3, 64, 128]),
        (Scheme::Uncoded, vec![1, 64, 129, 256]),
        (Scheme::BusInvert(1), vec![1, 8, 32, 64]),
        (Scheme::BusInvert(4), vec![4, 9, 32]),
        (Scheme::Ftc, vec![1, 2, 3, 4, 7, 12, 16]),
    ];
    for (scheme, widths) in cases {
        for k in widths {
            assert!(batch_is_native(scheme), "{}", scheme.name());
            let blocks = block_shapes(&mut rng, k);
            assert_blocks_equiv(scheme, k, &blocks, 0.1, k as u64);
        }
    }
}

/// Exhaustive over every possible received bus word for the small-width
/// checked decoders: batch `decode_checked` must match scalar on all
/// `2^wires` inputs, not just random ones.
#[test]
fn checked_decode_is_exhaustively_equivalent_at_small_widths() {
    for (scheme, k) in [
        (Scheme::Parity, 3),
        (Scheme::Hamming, 4),
        (Scheme::ExtHamming, 4),
        (Scheme::Dap, 3),
        (Scheme::Shielding, 4),
        (Scheme::Duplication, 4),
        (Scheme::Ftc, 3),
    ] {
        let mut scalar = scheme.build(k);
        let mut batch = batch_build(scheme, k);
        let all: Vec<Word> = Word::enumerate_all(scalar.wires()).collect();
        for chunk in all.chunks(BLOCK_WORDS) {
            let block = WordBlock::from_words(chunk);
            let (out, status) = batch.decode_checked(&block);
            let out_words = out.to_words();
            for (j, &bus) in chunk.iter().enumerate() {
                let (s_data, s_status) = scalar.decode_checked(bus);
                assert_eq!(out_words[j], s_data, "{} k={k} bus={bus}", scheme.name());
                assert_eq!(
                    status.status(j),
                    s_status,
                    "{} k={k} bus={bus}",
                    scheme.name()
                );
            }
        }
    }
}

/// Stateful codecs must agree on the *state trajectory* too: after any
/// shared prefix of blocks, reset must restore both to the zero state.
#[test]
fn stateful_reset_matches_scalar() {
    let mut rng = StdRng::seed_from_u64(0xBA7E);
    for scheme in [
        Scheme::BusInvert(2),
        Scheme::Bih,
        Scheme::Bsc,
        Scheme::Dapbi,
    ] {
        let k = 8;
        let mut batch = batch_build(scheme, k);
        let mut scalar = scheme.build(k);
        let warmup: Vec<Word> = (0..17).map(|_| random_word(&mut rng, k)).collect();
        let _ = batch.encode(&WordBlock::from_words(&warmup));
        for &w in &warmup {
            let _ = scalar.encode(w);
        }
        batch.reset();
        scalar.reset();
        let probe: Vec<Word> = (0..5).map(|_| random_word(&mut rng, k)).collect();
        let b = batch.encode(&WordBlock::from_words(&probe));
        let s: Vec<Word> = probe.iter().map(|&w| scalar.encode(w)).collect();
        assert_eq!(b.to_words(), s, "{} post-reset", scheme.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// transpose ∘ untranspose = id over random widths and lengths,
    /// including the degenerate and limb-boundary shapes.
    #[test]
    fn transpose_untranspose_roundtrips(
        width in 0usize..=256,
        len in 0usize..=BLOCK_WORDS,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let words: Vec<Word> = (0..len).map(|_| random_word(&mut rng, width)).collect();
        let block = WordBlock::from_words(&words);
        prop_assert_eq!(block.len(), len);
        prop_assert_eq!(block.to_words(), words);
        // The masking invariant: no lane carries bits past `len`.
        for i in 0..block.width() {
            prop_assert_eq!(block.lane(i) & !block.valid_mask(), 0);
        }
    }

    /// Random scheme, width, data, and noise: the batch path is the
    /// scalar path.
    #[test]
    fn random_blocks_batch_equals_scalar(
        scheme_idx in 0usize..17,
        k in 1usize..=16,
        noise in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let catalog = Scheme::catalog();
        let scheme = catalog[scheme_idx % catalog.len()];
        // BI(i) needs i <= k; clamp via the smallest valid width.
        let k = if let Scheme::BusInvert(i) = scheme { k.max(i) } else { k };
        let mut rng = StdRng::seed_from_u64(seed);
        let len = 1 + (seed as usize % BLOCK_WORDS);
        let blocks: Vec<Vec<Word>> = (0..2)
            .map(|_| (0..len).map(|_| random_word(&mut rng, k)).collect())
            .collect();
        assert_blocks_equiv(scheme, k, &blocks, noise, seed);
    }
}
