//! Property tests across arbitrary widths for the parameterized codes —
//! the constructors must produce correct codecs for *every* width, not
//! just the paper's 4- and 32-bit instances.

use proptest::prelude::*;
use socbus_codes::{analysis, BchDec, BusCode, Dap, ForbiddenTransitionCode, Hamming};
use socbus_model::{bus_delay_factor, DelayClass, TransitionVector, Word};

fn word(bits: u128, k: usize) -> Word {
    Word::from_bits(bits, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hamming_corrects_at_any_width(k in 1usize..=57, data in any::<u64>(), wire in any::<usize>()) {
        let mut c = Hamming::new(k);
        let d = word(u128::from(data) & ((1 << k.min(64)) - 1), k);
        let cw = c.encode(d);
        let w = wire % cw.width();
        prop_assert_eq!(c.decode(cw.with_bit(w, !cw.bit(w))), d);
    }

    #[test]
    fn dap_corrects_at_any_width(k in 1usize..=64, data in any::<u64>(), wire in any::<usize>()) {
        let mut c = Dap::new(k);
        let d = word(u128::from(data) & ((1u128 << k) - 1), k);
        let cw = c.encode(d);
        let w = wire % cw.width();
        prop_assert_eq!(c.decode(cw.with_bit(w, !cw.bit(w))), d);
    }

    #[test]
    fn bch_corrects_two_errors_at_any_width(
        k in 1usize..=60,
        data in any::<u64>(),
        w1 in any::<usize>(),
        w2 in any::<usize>(),
    ) {
        let mut c = BchDec::new(k);
        let mask = if k >= 64 { u64::MAX } else { (1 << k) - 1 };
        let d = word(u128::from(data & mask), k);
        let cw = c.encode(d);
        let a = w1 % cw.width();
        let b = w2 % cw.width();
        let mut bad = cw.with_bit(a, !cw.bit(a));
        if b != a {
            bad.set_bit(b, !bad.bit(b));
        }
        prop_assert_eq!(c.decode(bad), d, "k={} flips {},{}", k, a, b);
    }

    #[test]
    fn ftc_roundtrips_and_keeps_cac_class_at_any_width(
        k in 1usize..=40,
        seq in prop::collection::vec(any::<u64>(), 2..12),
        lambda in 0.95f64..4.6,
    ) {
        let mut c = ForbiddenTransitionCode::new(k);
        let mask = if k >= 64 { u64::MAX } else { (1 << k) - 1 };
        let mut prev: Option<Word> = None;
        for &v in &seq {
            let d = word(u128::from(v & mask), k);
            let cw = c.encode(d);
            prop_assert_eq!(c.decode(cw), d);
            if let Some(p) = prev {
                let f = bus_delay_factor(&TransitionVector::between(p, cw), lambda);
                prop_assert!(f <= DelayClass::CAC.factor(lambda) + 1e-9, "k={} f={}", k, f);
            }
            prev = Some(cw);
        }
    }

    #[test]
    fn average_energy_is_bounded_by_worst_case(k in 2usize..=8) {
        // Self coefficient can never exceed wires/2 (every wire switching
        // every cycle); coupling never exceeds (wires-1)*2.
        let mut c = Dap::new(k);
        let e = analysis::average_energy(&mut c, 0);
        let n = c.wires() as f64;
        prop_assert!(e.self_coeff <= n / 2.0);
        prop_assert!(e.coupling_coeff <= (n - 1.0) * 2.0);
        prop_assert!(e.self_coeff > 0.0);
    }
}
