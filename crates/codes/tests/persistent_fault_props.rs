//! Persistent-wire-fault properties across the whole scheme catalog.
//!
//! A manufacturing defect or electromigration failure leaves a wire stuck
//! at a fixed level, which corrupts at most one wire of every transmitted
//! codeword. For each catalog scheme these tests pin down the contract
//! under that fault class:
//!
//! * single-error-correcting schemes must *mask* the fault — the decoder
//!   returns the original data for every stuck wire and polarity;
//! * detection-only schemes (parity, duplication) must never report a
//!   corrupted word as clean;
//! * every scheme must at least survive the fault without panicking.

use proptest::prelude::*;
use socbus_codes::{DecodeStatus, Scheme};
use socbus_model::Word;

const K: usize = 8;

/// Every scheme in the catalog: the Table III set plus the
/// detection/correction schemes the tables omit.
fn catalog() -> Vec<Scheme> {
    let mut schemes = Scheme::table3();
    for extra in [
        Scheme::Duplication,
        Scheme::Parity,
        Scheme::ExtHamming,
        Scheme::BchDec,
    ] {
        if !schemes.contains(&extra) {
            schemes.push(extra);
        }
    }
    schemes
}

/// Detection-only schemes: they flag single wire errors but cannot fix
/// them.
fn detects_only(scheme: Scheme) -> bool {
    matches!(scheme, Scheme::Parity | Scheme::Duplication)
}

/// Encodes `data` with a fresh codec pair, forces `wire` of the codeword
/// to `value` (a stuck-at fault), and decodes with a fresh, synchronized
/// decoder. Returns the transmitted codeword, the corrupted word, and the
/// decode result.
fn transfer_with_stuck_wire(
    scheme: Scheme,
    data: Word,
    wire: usize,
    value: bool,
) -> (Word, Word, Word, DecodeStatus) {
    let mut enc = scheme.build(K);
    let mut dec = scheme.build(K);
    let cw = enc.encode(data);
    let corrupted = cw.with_bit(wire, value);
    let (out, status) = dec.decode_checked(corrupted);
    (cw, corrupted, out, status)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Correcting schemes mask every single stuck wire: whatever polarity
    /// the defect has and wherever it sits, the data comes back intact.
    #[test]
    fn correcting_schemes_mask_any_stuck_wire(data in any::<u8>()) {
        let d = Word::from_bits(u128::from(data), K);
        for scheme in catalog().into_iter().filter(|s| s.corrects_errors()) {
            let wires = scheme.build(K).wires();
            for wire in 0..wires {
                for value in [false, true] {
                    let (_cw, _corrupted, out, status) =
                        transfer_with_stuck_wire(scheme, d, wire, value);
                    prop_assert_eq!(
                        out, d,
                        "{} wire {} stuck at {}", scheme.name(), wire, u8::from(value)
                    );
                    // A single wire fault is within the correction budget,
                    // so the decoder must never escalate it to an
                    // uncorrectable `Detected`. `Clean` is legitimate when
                    // the stuck wire carries no information (shields,
                    // redundant copies).
                    prop_assert!(
                        matches!(status, DecodeStatus::Clean | DecodeStatus::Corrected),
                        "{} wire {} stuck at {}: status {:?}",
                        scheme.name(), wire, u8::from(value), status
                    );
                }
            }
        }
    }

    /// Detection-only schemes never call a corrupted word clean: a stuck
    /// wire that actually changed the codeword always raises `Detected`,
    /// which is what arms the link layer's retransmission path.
    #[test]
    fn detecting_schemes_flag_every_corrupted_word(data in any::<u8>()) {
        let d = Word::from_bits(u128::from(data), K);
        for scheme in catalog().into_iter().filter(|s| detects_only(*s)) {
            let wires = scheme.build(K).wires();
            for wire in 0..wires {
                for value in [false, true] {
                    let (cw, corrupted, out, status) =
                        transfer_with_stuck_wire(scheme, d, wire, value);
                    if corrupted == cw {
                        prop_assert_eq!(out, d);
                        prop_assert_eq!(status, DecodeStatus::Clean);
                    } else {
                        prop_assert_eq!(
                            status,
                            DecodeStatus::Detected,
                            "{} wire {} stuck at {} slipped through",
                            scheme.name(), wire, u8::from(value)
                        );
                    }
                }
            }
        }
    }

    /// Unprotected schemes still have to decode *something* under a stuck
    /// wire (no panic), and an innocuous fault — the wire already carries
    /// the stuck level — must not disturb the data.
    #[test]
    fn unprotected_schemes_survive_stuck_wires(data in any::<u8>()) {
        let d = Word::from_bits(u128::from(data), K);
        for scheme in catalog()
            .into_iter()
            .filter(|s| !s.corrects_errors() && !detects_only(*s))
        {
            let wires = scheme.build(K).wires();
            for wire in 0..wires {
                for value in [false, true] {
                    let (cw, corrupted, out, _) =
                        transfer_with_stuck_wire(scheme, d, wire, value);
                    if corrupted == cw {
                        prop_assert_eq!(
                            out, d,
                            "{} altered data without a fault", scheme.name()
                        );
                    }
                }
            }
        }
    }

    /// A resistive bridge shorts two neighboring wires to their AND or OR;
    /// that changes at most one wire of the pair, so correcting schemes
    /// must mask bridges exactly like stuck-ats.
    #[test]
    fn correcting_schemes_mask_bridged_neighbors(data in any::<u8>()) {
        let d = Word::from_bits(u128::from(data), K);
        for scheme in catalog().into_iter().filter(|s| s.corrects_errors()) {
            let wires = scheme.build(K).wires();
            for wire in 0..wires - 1 {
                for or_mode in [false, true] {
                    let mut enc = scheme.build(K);
                    let mut dec = scheme.build(K);
                    let cw = enc.encode(d);
                    let shorted = if or_mode {
                        cw.bit(wire) | cw.bit(wire + 1)
                    } else {
                        cw.bit(wire) & cw.bit(wire + 1)
                    };
                    let corrupted = cw.with_bit(wire, shorted).with_bit(wire + 1, shorted);
                    let (out, _) = dec.decode_checked(corrupted);
                    prop_assert_eq!(
                        out, d,
                        "{} bridge at wires {},{} ({})",
                        scheme.name(), wire, wire + 1,
                        if or_mode { "or" } else { "and" }
                    );
                }
            }
        }
    }
}
