//! The reliability ↔ energy tradeoff: voltage scaling under ECC
//! (paper §IV-B, eq. (11)).
//!
//! The design rule: an uncoded bus at nominal swing `Vdd` meets a target
//! word-error probability `P_target` against Gaussian noise σ_N. An
//! ECC-protected bus may lower its swing to `V̂dd` as long as its
//! *residual* word error at the new (higher) bit-error rate still meets
//! `P_target`:
//!
//! ```text
//! V̂dd = Vdd · Q⁻¹(ε̂) / Q⁻¹(ε)
//! ```
//!
//! where `ε` solves `P_unc(ε) = P_target` and `ε̂` solves
//! `P_ecc(ε̂) = P_target`. Since bus energy scales with `V̂dd²`, the
//! redundancy buys quadratic energy savings.

use socbus_model::noise::{self, binomial};
use socbus_model::q_inv;

/// Why a voltage-scaling request describes no physical design point.
/// Returned by the checked entry points instead of letting NaN/Inf (or
/// a swing of zero) leak into downstream energy reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalingError {
    /// The target word-error probability is non-finite or outside
    /// `(0, 1)` — at 0 no finite swing suffices, at 1 the solver would
    /// hand back ε → 1 (a wire that is pure noise).
    TargetOutOfRange(f64),
    /// The residual model protects no wires (zero `wires`/`k`, or fewer
    /// wires than the error weight it models), so its residual is
    /// identically zero and no ε solves it.
    DegenerateModel,
    /// The nominal swing is non-finite, zero, or negative.
    BadNominalVdd(f64),
}

impl std::fmt::Display for ScalingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingError::TargetOutOfRange(p) => {
                write!(f, "target word-error probability {p} outside (0, 1)")
            }
            ScalingError::DegenerateModel => {
                write!(f, "residual model protects no wires")
            }
            ScalingError::BadNominalVdd(v) => write!(f, "nominal swing {v} is not positive"),
        }
    }
}

impl std::error::Error for ScalingError {}

/// Residual word-error model of a coding scheme, used to solve for the
/// scaled swing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ResidualModel {
    /// No protection over `wires` wires: `P = 1 − (1−ε)^wires`.
    Uncoded {
        /// Wires whose errors corrupt the word.
        wires: usize,
    },
    /// Any distance-3 code failing on ≥2 errors among `wires` wires:
    /// `P ≈ C(wires, 2)·ε²` (eq. (8) with `wires = k + m`).
    DoubleError {
        /// Total protected wires (data + parity).
        wires: usize,
    },
    /// The DAP family (eq. (9)): `P ≈ 3k(k+1)/2·ε²` over `k` protected
    /// payload bits.
    Dap {
        /// Payload bits protected by duplication + parity.
        k: usize,
    },
    /// A distance-5 double-error-correcting code failing on ≥3 errors:
    /// `P ≈ C(wires, 3)·ε³` — the BCH extension of the paper's §V.
    TripleError {
        /// Total protected wires (data + parity).
        wires: usize,
    },
}

impl ResidualModel {
    /// Residual word-error probability at per-wire error rate `eps`.
    #[must_use]
    pub fn residual(&self, eps: f64) -> f64 {
        match *self {
            // 1 - (1-eps)^w via ln_1p/exp_m1 to stay accurate at 1e-20.
            ResidualModel::Uncoded { wires } => -(wires as f64 * (-eps).ln_1p()).exp_m1(),
            ResidualModel::DoubleError { wires } => binomial(wires, 2) * eps * eps,
            ResidualModel::Dap { k } => noise::word_error_dap(k, eps),
            ResidualModel::TripleError { wires } => binomial(wires, 3) * eps * eps * eps,
        }
    }

    /// Solves `residual(ε) = p_target` for ε.
    ///
    /// # Panics
    ///
    /// Panics when [`ResidualModel::try_solve_eps`] rejects the inputs.
    #[must_use]
    pub fn solve_eps(&self, p_target: f64) -> f64 {
        match self.try_solve_eps(p_target) {
            Ok(eps) => eps,
            Err(e) => panic!("target out of range: {e}"),
        }
    }

    /// [`ResidualModel::solve_eps`] with degenerate inputs rejected
    /// instead of panicking or returning NaN/Inf.
    ///
    /// # Errors
    ///
    /// Returns [`ScalingError::TargetOutOfRange`] unless
    /// `0 < p_target < 1` (finite), and
    /// [`ScalingError::DegenerateModel`] when the model has fewer wires
    /// than the error weight it counts (its residual is identically
    /// zero, so no ε exists).
    pub fn try_solve_eps(&self, p_target: f64) -> Result<f64, ScalingError> {
        if !(p_target > 0.0 && p_target < 1.0) {
            return Err(ScalingError::TargetOutOfRange(p_target));
        }
        let degenerate = match *self {
            ResidualModel::Uncoded { wires } => wires == 0,
            ResidualModel::DoubleError { wires } => wires < 2,
            ResidualModel::Dap { k } => k == 0,
            ResidualModel::TripleError { wires } => wires < 3,
        };
        if degenerate {
            return Err(ScalingError::DegenerateModel);
        }
        Ok(self.solve_eps_unchecked(p_target))
    }

    fn solve_eps_unchecked(&self, p_target: f64) -> f64 {
        match *self {
            ResidualModel::Uncoded { wires } => {
                // 1 - (1-eps)^w = p  =>  eps = 1 - (1-p)^(1/w), computed
                // via ln_1p/exp_m1 so tiny targets (1e-20) survive f64.
                -((-p_target).ln_1p() / wires as f64).exp_m1()
            }
            ResidualModel::DoubleError { wires } => (p_target / binomial(wires, 2)).sqrt(),
            ResidualModel::Dap { k } => {
                let kf = k as f64;
                (p_target / (1.5 * kf * (kf + 1.0))).sqrt()
            }
            ResidualModel::TripleError { wires } => (p_target / binomial(wires, 3)).cbrt(),
        }
    }
}

/// A voltage-scaling design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaledDesign {
    /// Nominal swing (V).
    pub nominal_vdd: f64,
    /// Scaled swing meeting the same reliability (V).
    pub scaled_vdd: f64,
    /// Bit-error rate at the scaled swing.
    pub eps_scaled: f64,
    /// Noise σ_N implied by the calibration (V).
    pub sigma: f64,
}

impl ScaledDesign {
    /// Energy scale factor `(V̂/V)²` applied to the bus energy.
    #[must_use]
    pub fn energy_scale(&self) -> f64 {
        (self.scaled_vdd / self.nominal_vdd).powi(2)
    }
}

/// Calibrates the noise from the uncoded reference (uncoded `k_ref`-wire
/// bus at `nominal_vdd` meets `p_target`), then scales the swing for a
/// coded bus with residual model `model` to meet the same target
/// (eq. (11)). Codes whose residual at nominal swing is already above
/// target keep the nominal swing.
///
/// # Panics
///
/// Panics when [`try_scale_voltage`] rejects the inputs.
#[must_use]
pub fn scale_voltage(
    model: ResidualModel,
    k_ref: usize,
    p_target: f64,
    nominal_vdd: f64,
) -> ScaledDesign {
    match try_scale_voltage(model, k_ref, p_target, nominal_vdd) {
        Ok(d) => d,
        Err(e) => panic!("degenerate scaling request: {e}"),
    }
}

/// [`scale_voltage`] with every degenerate operating point rejected up
/// front, so no NaN, Inf, or zero swing can reach an energy report.
///
/// # Errors
///
/// Returns a [`ScalingError`] when `p_target` is outside `(0, 1)`, the
/// reference bus has zero wires, the residual model is degenerate, or
/// `nominal_vdd` is non-finite, zero, or negative.
pub fn try_scale_voltage(
    model: ResidualModel,
    k_ref: usize,
    p_target: f64,
    nominal_vdd: f64,
) -> Result<ScaledDesign, ScalingError> {
    if !(nominal_vdd.is_finite() && nominal_vdd > 0.0) {
        return Err(ScalingError::BadNominalVdd(nominal_vdd));
    }
    let eps_ref = ResidualModel::Uncoded { wires: k_ref }.try_solve_eps(p_target)?;
    let x_ref = q_inv(eps_ref);
    let sigma = nominal_vdd / (2.0 * x_ref);
    let eps_scaled = model.try_solve_eps(p_target)?;
    let x_scaled = q_inv(eps_scaled);
    let scaled = (nominal_vdd * x_scaled / x_ref).min(nominal_vdd);
    Ok(ScaledDesign {
        nominal_vdd,
        scaled_vdd: scaled,
        eps_scaled,
        sigma,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: f64 = 1e-20;

    #[test]
    fn hamming_32_scales_near_paper_value() {
        // Table III reports 0.884 V for the 38-wire Hamming bus; the
        // eq. (8)/(11) math lands within a few percent.
        let d = scale_voltage(ResidualModel::DoubleError { wires: 38 }, 32, P, 1.2);
        assert!(
            (0.82..0.92).contains(&d.scaled_vdd),
            "scaled {}",
            d.scaled_vdd
        );
    }

    #[test]
    fn dap_32_scales_near_paper_value() {
        // Table III reports 0.860 V for DAP.
        let d = scale_voltage(ResidualModel::Dap { k: 32 }, 32, P, 1.2);
        assert!(
            (0.82..0.92).contains(&d.scaled_vdd),
            "scaled {}",
            d.scaled_vdd
        );
    }

    #[test]
    fn scaled_swing_never_exceeds_nominal() {
        let d = scale_voltage(ResidualModel::Uncoded { wires: 32 }, 32, P, 1.2);
        assert!((d.scaled_vdd - 1.2).abs() < 1e-12);
        let d = scale_voltage(ResidualModel::Uncoded { wires: 64 }, 32, P, 1.2);
        assert!(d.scaled_vdd <= 1.2);
    }

    #[test]
    fn residual_solver_roundtrips() {
        for model in [
            ResidualModel::Uncoded { wires: 32 },
            ResidualModel::DoubleError { wires: 38 },
            ResidualModel::Dap { k: 32 },
        ] {
            for &p in &[1e-6, 1e-12, 1e-20] {
                let eps = model.solve_eps(p);
                let back = model.residual(eps);
                assert!((back - p).abs() / p < 1e-6, "{model:?} p={p}: back={back}");
            }
        }
    }

    #[test]
    fn stronger_codes_scale_lower() {
        // More redundancy (relative to exposure) => lower achievable swing.
        let ham4 = scale_voltage(ResidualModel::DoubleError { wires: 7 }, 4, P, 1.2);
        let unc = scale_voltage(ResidualModel::Uncoded { wires: 4 }, 4, P, 1.2);
        assert!(ham4.scaled_vdd < unc.scaled_vdd);
    }

    #[test]
    fn bch_triple_error_model_scales_below_hamming() {
        // A DEC code tolerates a much higher eps at the same target, so it
        // scales the swing further down than SEC codes.
        let ham = scale_voltage(ResidualModel::DoubleError { wires: 38 }, 32, P, 1.2);
        let bch = scale_voltage(ResidualModel::TripleError { wires: 44 }, 32, P, 1.2);
        assert!(
            bch.scaled_vdd < ham.scaled_vdd,
            "bch {} ham {}",
            bch.scaled_vdd,
            ham.scaled_vdd
        );
        assert!(bch.scaled_vdd > 0.5, "sane swing {}", bch.scaled_vdd);
        // Roundtrip of the cubic solver.
        let eps = ResidualModel::TripleError { wires: 44 }.solve_eps(P);
        let back = ResidualModel::TripleError { wires: 44 }.residual(eps);
        assert!((back - P).abs() / P < 1e-6);
    }

    #[test]
    fn energy_scale_is_quadratic() {
        let d = scale_voltage(ResidualModel::DoubleError { wires: 38 }, 32, P, 1.2);
        let expect = (d.scaled_vdd / 1.2).powi(2);
        assert!((d.energy_scale() - expect).abs() < 1e-12);
        assert!(d.energy_scale() < 0.6, "ECC should buy >40% bus energy");
    }

    /// Satellite (degenerate operating points): every edge that used to
    /// produce NaN/Inf — or an assert with no recoverable path — is an
    /// explicit error.
    #[test]
    fn degenerate_scaling_requests_are_explicit_errors() {
        let model = ResidualModel::DoubleError { wires: 38 };
        // eps → 1 territory and worse: targets outside (0, 1).
        assert_eq!(
            model.try_solve_eps(0.0),
            Err(ScalingError::TargetOutOfRange(0.0))
        );
        assert_eq!(
            model.try_solve_eps(1.0),
            Err(ScalingError::TargetOutOfRange(1.0))
        );
        assert!(matches!(
            model.try_solve_eps(f64::NAN),
            Err(ScalingError::TargetOutOfRange(_))
        ));
        // Models that protect no wires have no solvable ε.
        assert_eq!(
            ResidualModel::Uncoded { wires: 0 }.try_solve_eps(P),
            Err(ScalingError::DegenerateModel)
        );
        assert_eq!(
            ResidualModel::DoubleError { wires: 1 }.try_solve_eps(P),
            Err(ScalingError::DegenerateModel)
        );
        assert_eq!(
            ResidualModel::Dap { k: 0 }.try_solve_eps(P),
            Err(ScalingError::DegenerateModel)
        );
        assert_eq!(
            ResidualModel::TripleError { wires: 2 }.try_solve_eps(P),
            Err(ScalingError::DegenerateModel)
        );
        // Zero/negative/non-finite swings are rejected up front.
        assert_eq!(
            try_scale_voltage(model, 32, P, 0.0),
            Err(ScalingError::BadNominalVdd(0.0))
        );
        assert_eq!(
            try_scale_voltage(model, 32, P, -1.2),
            Err(ScalingError::BadNominalVdd(-1.2))
        );
        assert!(matches!(
            try_scale_voltage(model, 32, P, f64::INFINITY),
            Err(ScalingError::BadNominalVdd(_))
        ));
        // A zero-wire reference bus cannot calibrate σ.
        assert_eq!(
            try_scale_voltage(model, 0, P, 1.2),
            Err(ScalingError::DegenerateModel)
        );
        // The happy path agrees with the panicking wrapper, NaN-free.
        let d = try_scale_voltage(model, 32, P, 1.2).expect("valid request");
        assert_eq!(d, scale_voltage(model, 32, P, 1.2));
        assert!(d.scaled_vdd.is_finite() && d.scaled_vdd > 0.0);
        assert!(d.energy_scale().is_finite());
    }

    #[test]
    fn sigma_calibration_matches_eq5() {
        let d = scale_voltage(ResidualModel::Uncoded { wires: 32 }, 32, P, 1.2);
        // ε at nominal = Q(Vdd/2σ) must equal the calibration target.
        let eps = socbus_model::bit_error_probability(1.2, d.sigma);
        let expect = ResidualModel::Uncoded { wires: 32 }.solve_eps(P);
        assert!((eps - expect).abs() / expect < 1e-6);
    }
}
