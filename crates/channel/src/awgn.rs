//! The additive-Gaussian-noise bus channel (paper §II-A.3).
//!
//! Every wire of the received word sees the driven rail voltage plus a
//! zero-mean Gaussian noise sample of standard deviation σ_N; the
//! receiver slices at half swing. The resulting bit-error probability is
//! `ε = Q(swing / 2σ_N)` — eq. (5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_codes::WordBlock;
use socbus_model::{bit_error_probability, Word};

/// A noisy bus channel.
#[derive(Clone, Debug)]
pub struct GaussianChannel {
    /// Signal swing on the wires (V); the scaled `V̂dd` when low-swing
    /// signaling is used.
    pub swing: f64,
    /// Noise standard deviation σ_N (V).
    pub sigma: f64,
    rng: StdRng,
}

impl GaussianChannel {
    /// A channel with the given swing and noise level.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    #[must_use]
    pub fn new(swing: f64, sigma: f64, seed: u64) -> Self {
        assert!(swing > 0.0 && sigma > 0.0, "parameters must be positive");
        GaussianChannel {
            swing,
            sigma,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The per-wire bit-error probability `Q(swing/2σ)`.
    #[must_use]
    pub fn bit_error_probability(&self) -> f64 {
        bit_error_probability(self.swing, self.sigma)
    }

    /// One standard Gaussian sample (Box–Muller).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Transmits a word: drives each wire to its rail, adds noise, and
    /// slices at half swing.
    #[must_use]
    pub fn transmit(&mut self, word: Word) -> Word {
        let half = self.swing / 2.0;
        let mut out = Word::zero(word.width());
        for i in 0..word.width() {
            let v = if word.bit(i) { self.swing } else { 0.0 };
            let noisy = v + self.sigma * self.gauss();
            out.set_bit(i, noisy > half);
        }
        out
    }
}

/// A simpler abstraction for validation: flips each wire independently
/// with probability ε (the regime the analytic formulas assume).
#[derive(Clone, Debug)]
pub struct BitFlipChannel {
    /// Per-wire flip probability.
    pub eps: f64,
    rng: StdRng,
}

impl BitFlipChannel {
    /// A channel flipping wires i.i.d. with probability `eps`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= eps <= 1`.
    #[must_use]
    pub fn new(eps: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "eps out of range");
        BitFlipChannel {
            eps,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Transmits a word through the flip channel.
    #[must_use]
    pub fn transmit(&mut self, word: Word) -> Word {
        let mut out = word;
        for i in 0..word.width() {
            if self.rng.gen::<f64>() < self.eps {
                out.set_bit(i, !out.bit(i));
            }
        }
        out
    }

    /// Transmits a whole [`WordBlock`] in place, drawing the flip
    /// variates **word by word, wire-ascending within each word** — the
    /// exact RNG stream [`BitFlipChannel::transmit`] consumes for the
    /// same words in the same order. This is what keeps the batch
    /// Monte-Carlo path byte-identical to the scalar one.
    pub fn corrupt_block(&mut self, block: &mut WordBlock) {
        for j in 0..block.len() {
            for i in 0..block.width() {
                if self.rng.gen::<f64>() < self.eps {
                    block.flip_bit(i, j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_channel_is_transparent() {
        let mut ch = GaussianChannel::new(1.2, 1e-6, 1);
        let w = Word::from_bits(0b1011, 4);
        for _ in 0..100 {
            assert_eq!(ch.transmit(w), w);
        }
    }

    #[test]
    fn measured_ber_matches_q_function() {
        // σ chosen for ε ≈ 2.3% — measurable in few trials.
        let swing = 1.2;
        let sigma = 0.3;
        let mut ch = GaussianChannel::new(swing, sigma, 7);
        let expect = ch.bit_error_probability();
        let w = Word::from_bits(0, 64);
        let mut flips = 0u64;
        let trials = 4000;
        for _ in 0..trials {
            flips += u64::from(ch.transmit(w).count_ones());
        }
        let measured = flips as f64 / (64.0 * f64::from(trials));
        assert!(
            (measured - expect).abs() / expect < 0.1,
            "measured {measured} vs Q {expect}"
        );
    }

    #[test]
    fn lower_swing_raises_error_rate() {
        let hi = GaussianChannel::new(1.2, 0.1, 1).bit_error_probability();
        let lo = GaussianChannel::new(0.8, 0.1, 1).bit_error_probability();
        assert!(lo > hi);
    }

    #[test]
    fn corrupt_block_consumes_the_scalar_stream() {
        // Same seed, same words: the block path must produce exactly the
        // words the scalar path does, because it draws the same variates
        // in the same order.
        let words: Vec<Word> = (0..64u128).map(|j| Word::from_bits(j * 37, 11)).collect();
        let mut scalar_ch = BitFlipChannel::new(0.2, 99);
        let scalar: Vec<Word> = words.iter().map(|&w| scalar_ch.transmit(w)).collect();
        let mut block = WordBlock::from_words(&words);
        let mut block_ch = BitFlipChannel::new(0.2, 99);
        block_ch.corrupt_block(&mut block);
        assert_eq!(block.to_words(), scalar);
    }

    #[test]
    fn flip_channel_rate_is_calibrated() {
        let mut ch = BitFlipChannel::new(0.05, 3);
        let w = Word::zero(100);
        let mut flips = 0u64;
        for _ in 0..2000 {
            flips += u64::from(ch.transmit(w).count_ones());
        }
        let rate = flips as f64 / 200_000.0;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }
}
