//! Monte-Carlo residual word-error measurement.
//!
//! Drives real encoder/decoder pairs through a noisy channel and counts
//! decoded-word failures — the experimental check of the paper's
//! eqs. (7)–(9) and Appendix II, run at error rates high enough to
//! observe (the analytic formulas then extrapolate to the 1e-20 design
//! point, exactly as the paper does).
//!
//! Large runs go through [`word_error_rate_parallel`]: trials are cut
//! into a *static* shard list of [`MC_SHARD_TRIALS`]-sized chunks, each
//! shard seeded by [`socbus_exec::shard_seed`] from the root seed and
//! its shard index, shards execute on a work-stealing thread pool, and
//! the per-shard estimates merge in shard order — so the result is
//! bit-identical for every thread count, 1 included.

use crate::awgn::BitFlipChannel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_codes::{batch_build, Scheme, WordBlock, BLOCK_WORDS};
use socbus_exec::{run_shards, shard_seed};
use socbus_model::Word;
use socbus_telemetry::Telemetry;

/// Trials between `mc.progress` telemetry events in
/// [`word_error_rate_traced`]; small runs emit a single final event.
pub const MC_PROGRESS_CHUNK: u64 = 10_000;

/// Trials per shard in [`word_error_rate_parallel`]. Part of the result
/// definition: the decomposition (and therefore the merged estimate) is
/// fixed by the trial count alone, never by the thread count.
pub const MC_SHARD_TRIALS: u64 = 65_536;

/// Result of a word-error Monte-Carlo run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WordErrorEstimate {
    /// Observed residual word-error rate.
    pub rate: f64,
    /// Number of word transfers simulated.
    pub trials: u64,
    /// Number of erroneous decoded words.
    pub failures: u64,
}

impl WordErrorEstimate {
    /// Approximate 95% confidence half-width (normal approximation),
    /// with a one-sided *rule-of-three* bound at the degenerate edges.
    ///
    /// A zero-failure run used to report a width-0 interval — which
    /// claims the rate is *exactly* 0 no matter how few trials ran. The
    /// honest statement is the Clopper–Pearson-style upper bound: with 0
    /// failures in `n` trials, the exact one-sided 95% bound is
    /// `1 - 0.05^(1/n) ≈ 3/n` (the "rule of three"), so this returns
    /// `min(3/n, 1)` as the half-width of the one-sided interval
    /// `[0, 3/n]`. An all-failures run is the mirror image
    /// (`[1 - 3/n, 1]`). Zero trials yields `INFINITY` (no information).
    /// The result is never NaN.
    #[must_use]
    pub fn confidence95(&self) -> f64 {
        if self.trials == 0 {
            return f64::INFINITY;
        }
        let p = self.rate;
        if !p.is_finite() {
            return f64::INFINITY;
        }
        let var = p * (1.0 - p) / self.trials as f64;
        if var <= 0.0 {
            // 0 failures (or all failures): rule-of-three upper bound.
            return (3.0 / self.trials as f64).min(1.0);
        }
        1.96 * var.sqrt()
    }

    /// Merges per-shard estimates into the whole-run estimate: trials
    /// and failures add exactly, and the rate is **recomputed** from the
    /// merged tallies (never averaged — shards may have unequal sizes).
    /// The result is identical to a monolithic run that produced the
    /// same total tallies, `confidence95` included. An empty iterator
    /// (or all-empty shards) yields the zero-trial estimate.
    #[must_use]
    pub fn merged(shards: impl IntoIterator<Item = WordErrorEstimate>) -> WordErrorEstimate {
        let (trials, failures) = shards
            .into_iter()
            .fold((0u64, 0u64), |(t, f), s| (t + s.trials, f + s.failures));
        WordErrorEstimate {
            rate: if trials == 0 {
                0.0
            } else {
                failures as f64 / trials as f64
            },
            trials,
            failures,
        }
    }

    /// This estimate as a weighted tally: a plain Monte-Carlo run is the
    /// special case of likelihood-ratio weighting where every trial has
    /// weight exactly 1, so the sums are the raw counts.
    #[must_use]
    pub fn weighted(&self) -> WeightedTally {
        WeightedTally {
            sum: self.failures as f64,
            sum_sq: self.failures as f64,
            weighted_trials: self.trials as f64,
            trials: self.trials,
            failures: self.failures,
        }
    }
}

/// Streaming moments of a *weighted* word-error measurement — the
/// accumulator behind the importance-sampled estimators in
/// [`crate::rare`].
///
/// Each trial `i` contributes a likelihood-ratio weight `w_i` (the
/// nominal-measure probability of the drawn noise divided by its
/// probability under the biased sampling measure) and a failure
/// indicator `f_i ∈ {0, 1}`. The tally tracks exactly the sums that
/// shard-merge associatively:
///
/// * `sum`   = Σ `w_i·f_i`  — the unnormalized failure mass;
/// * `sum_sq` = Σ `(w_i·f_i)²` — its second moment, for the variance;
/// * `weighted_trials` = Σ `w_i` over **all** trials — under the nominal
///   measure `E[w] = 1`, so this should concentrate near `trials` (the
///   self-normalization sanity check the rare-event suite asserts);
/// * `trials`, `failures` — raw counts.
///
/// The estimator is `rate() = sum / trials`, which is **provably
/// unbiased** for the true failure probability whenever the sampling
/// measure dominates the failure set (every noise draw that can fail has
/// nonzero probability under the biased measure): `E[w·f] = Σ_e q(e) ·
/// (p(e)/q(e)) · f(e) = Σ_e p(e) f(e) = p_fail`.
///
/// Plain (unweighted) runs embed via [`WordErrorEstimate::weighted`]
/// with every `w_i = 1`, and the two merge paths agree exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedTally {
    /// Σ of `weight × failure-indicator` over all trials.
    pub sum: f64,
    /// Σ of `(weight × failure-indicator)²` over all trials.
    pub sum_sq: f64,
    /// Σ of the likelihood-ratio weight over all trials (failing or not).
    pub weighted_trials: f64,
    /// Number of simulated word transfers.
    pub trials: u64,
    /// Raw count of failing trials (unweighted).
    pub failures: u64,
}

impl WeightedTally {
    /// The empty tally (identity of [`WeightedTally::merged`]).
    #[must_use]
    pub fn zero() -> WeightedTally {
        WeightedTally {
            sum: 0.0,
            sum_sq: 0.0,
            weighted_trials: 0.0,
            trials: 0,
            failures: 0,
        }
    }

    /// Adds one trial with likelihood-ratio weight `w`, failing or not.
    pub fn record(&mut self, w: f64, failed: bool) {
        self.trials += 1;
        self.weighted_trials += w;
        if failed {
            self.failures += 1;
            self.sum += w;
            self.sum_sq += w * w;
        }
    }

    /// The unbiased rate estimate `sum / trials` (0 for an empty tally).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sum / self.trials as f64
        }
    }

    /// Mean likelihood-ratio weight over all trials; ≈ 1 when sampling
    /// under the nominal measure (the self-normalization check).
    #[must_use]
    pub fn mean_weight(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.weighted_trials / self.trials as f64
        }
    }

    /// Sample variance of the per-trial contribution `w·f` (0 when the
    /// tally holds fewer than two trials).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.trials < 2 {
            return 0.0;
        }
        let n = self.trials as f64;
        let mean = self.sum / n;
        // E[X²] - E[X]² with the n/(n-1) Bessel correction; clamp the
        // cancellation error at 0.
        ((self.sum_sq / n - mean * mean) * (n / (n - 1.0))).max(0.0)
    }

    /// 95% confidence half-width of [`WeightedTally::rate`] (normal
    /// approximation on the weighted mean). A tally with zero observed
    /// failures falls back to the weight-free rule-of-three bound `3/n`,
    /// mirroring [`WordErrorEstimate::confidence95`]; zero trials yields
    /// `INFINITY`.
    #[must_use]
    pub fn confidence95(&self) -> f64 {
        if self.trials == 0 {
            return f64::INFINITY;
        }
        if self.failures == 0 {
            return (3.0 / self.trials as f64).min(1.0);
        }
        let n = self.trials as f64;
        1.96 * (self.sample_variance() / n).sqrt()
    }

    /// Relative 95% half-width `confidence95 / rate`; `INFINITY` when the
    /// rate is 0 (no failure mass — nothing to be relative to).
    #[must_use]
    pub fn relative_ci95(&self) -> f64 {
        let r = self.rate();
        if r > 0.0 {
            self.confidence95() / r
        } else {
            f64::INFINITY
        }
    }

    /// Merges per-shard tallies in iteration order: every field is a
    /// plain sum, so the merge is exact for the integer fields and
    /// *order-deterministic* for the float fields — merging in shard
    /// order is what keeps the sharded estimators byte-identical across
    /// thread counts (the float sums are associative only in a fixed
    /// order). Mirrors [`WordErrorEstimate::merged`]; rates are never
    /// averaged, always recomputed from the merged sums.
    #[must_use]
    pub fn merged(shards: impl IntoIterator<Item = WeightedTally>) -> WeightedTally {
        let mut out = WeightedTally::zero();
        for s in shards {
            out.sum += s.sum;
            out.sum_sq += s.sum_sq;
            out.weighted_trials += s.weighted_trials;
            out.trials += s.trials;
            out.failures += s.failures;
        }
        out
    }
}

/// The static shard decomposition of a `trials`-sized run rooted at
/// `root_seed`: `(shard trials, shard seed)` pairs of [`MC_SHARD_TRIALS`]
/// full shards plus one remainder shard. Thread-count independent by
/// construction; exposed so tests can assert the decomposition directly.
#[must_use]
pub fn mc_shards(trials: u64, root_seed: u64) -> Vec<(u64, u64)> {
    let full = trials / MC_SHARD_TRIALS;
    let rem = trials % MC_SHARD_TRIALS;
    let mut shards = Vec::with_capacity(usize::try_from(full).unwrap_or(usize::MAX) + 1);
    for i in 0..full {
        shards.push((MC_SHARD_TRIALS, shard_seed(root_seed, i)));
    }
    if rem > 0 {
        shards.push((rem, shard_seed(root_seed, full)));
    }
    shards
}

/// Measures the residual word-error rate of `scheme` at width `k` under
/// i.i.d. per-wire flip probability `eps`, over `trials` random words.
///
/// Encoder and decoder advance in lockstep (wire errors never desynchronize
/// the codecs in this crate: decoder state is data-independent).
///
/// Trials run on the bit-sliced batch path ([`socbus_codes::batch`]) in
/// [`BLOCK_WORDS`]-sized blocks — byte-identical to the scalar reference
/// [`word_error_rate_scalar`] (the two RNG streams are consumed in the
/// same per-stream order; see the odd-trials regression tests) but an
/// order of magnitude cheaper on the linear schemes.
#[must_use]
pub fn word_error_rate(
    scheme: Scheme,
    k: usize,
    eps: f64,
    trials: u64,
    seed: u64,
) -> WordErrorEstimate {
    word_error_rate_traced(scheme, k, eps, trials, seed, &Telemetry::off())
}

/// The scalar (one-`Word`-at-a-time) reference implementation of
/// [`word_error_rate`]. Kept as the equivalence witness for the batch
/// path and as the baseline the codec bench measures speedups against.
#[must_use]
pub fn word_error_rate_scalar(
    scheme: Scheme,
    k: usize,
    eps: f64,
    trials: u64,
    seed: u64,
) -> WordErrorEstimate {
    word_error_rate_scalar_traced(scheme, k, eps, trials, seed, &Telemetry::off())
}

/// [`word_error_rate`] with batch-progress telemetry: every
/// [`MC_PROGRESS_CHUNK`] trials (and once at the end) it emits an
/// `mc.progress` event plus `mc.trials`/`mc.failures` counters and an
/// `mc.rate` gauge, all labeled with the scheme name. The telemetry
/// stream is identical to the scalar path's: chunk boundaries fall at the
/// same trial indices even though they land mid-block.
#[must_use]
pub fn word_error_rate_traced(
    scheme: Scheme,
    k: usize,
    eps: f64,
    trials: u64,
    seed: u64,
    tel: &Telemetry,
) -> WordErrorEstimate {
    // Two codec objects (endpoint state must stay independent for
    // stateful codes like BI); native batch codecs share the process-wide
    // codebook cache with the scalar ones, so construction cost per sweep
    // stays O(schemes) — see `cache_makes_builds_o_schemes`.
    let mut enc = batch_build(scheme, k);
    let mut dec = batch_build(scheme, k);
    let mut ch = BitFlipChannel::new(eps, seed ^ 0x5EED);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u64;
    let mut chunk_failures = 0u64;
    let mut done = 0u64;
    let scheme_name = if tel.is_enabled() {
        scheme.name()
    } else {
        String::new()
    };
    let mut words: Vec<Word> = Vec::with_capacity(BLOCK_WORDS);
    while done < trials {
        let n = usize::try_from((trials - done).min(BLOCK_WORDS as u64)).expect("n <= 64");
        // Data draws first (one `u128` per trial, in trial order), then
        // the channel draws (per word, wire-ascending): each stream is
        // its own RNG, so batching keeps both streams in scalar order.
        words.clear();
        words.extend((0..n).map(|_| Word::from_bits(rng.gen::<u128>(), k)));
        let data = WordBlock::from_words(&words);
        let sent = enc.encode(&data);
        let mut received = sent;
        ch.corrupt_block(&mut received);
        let out = dec.decode(&received);
        let fail_plane = (0..k).fold(0u64, |acc, i| acc | (out.lane(i) ^ data.lane(i)));
        if tel.is_enabled() {
            // Walk the block in trial order so the progress events land
            // on exactly the scalar path's chunk boundaries.
            for j in 0..n {
                if fail_plane >> j & 1 == 1 {
                    failures += 1;
                    chunk_failures += 1;
                }
                done += 1;
                if done.is_multiple_of(MC_PROGRESS_CHUNK) || done == trials {
                    let labels = [("scheme", scheme_name.as_str())];
                    tel.event("mc.progress", &labels, done);
                    tel.counter(
                        "mc.trials",
                        &labels,
                        if done.is_multiple_of(MC_PROGRESS_CHUNK) {
                            MC_PROGRESS_CHUNK
                        } else {
                            done % MC_PROGRESS_CHUNK
                        },
                    );
                    tel.counter("mc.failures", &labels, chunk_failures);
                    chunk_failures = 0;
                    tel.gauge("mc.rate", &labels, failures as f64 / done as f64);
                }
            }
        } else {
            failures += u64::from(fail_plane.count_ones());
            done += n as u64;
        }
    }
    WordErrorEstimate {
        // Guard the 0/0 shape explicitly: an empty run has rate 0, not NaN.
        rate: if trials == 0 {
            0.0
        } else {
            failures as f64 / trials as f64
        },
        trials,
        failures,
    }
}

/// [`word_error_rate_scalar`] with the same telemetry contract as
/// [`word_error_rate_traced`].
#[must_use]
pub fn word_error_rate_scalar_traced(
    scheme: Scheme,
    k: usize,
    eps: f64,
    trials: u64,
    seed: u64,
    tel: &Telemetry,
) -> WordErrorEstimate {
    // Two codec objects (endpoint state must stay independent for
    // stateful codes like BI), but both route through the process-wide
    // codebook cache in `socbus_codes::kernels`: building a shard's
    // encoder + decoder shares the Fibonacci books and inverse decode
    // tables with every other shard, so construction cost per sweep is
    // O(schemes), not O(shards) — see `cache_makes_builds_o_schemes`.
    let mut enc = scheme.build(k);
    let mut dec = scheme.build(k);
    let mut ch = BitFlipChannel::new(eps, seed ^ 0x5EED);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u64;
    let mut chunk_failures = 0u64;
    let scheme_name = if tel.is_enabled() {
        scheme.name()
    } else {
        String::new()
    };
    for t in 0..trials {
        let d = Word::from_bits(rng.gen::<u128>(), k);
        let sent = enc.encode(d);
        let received = ch.transmit(sent);
        if dec.decode(received) != d {
            failures += 1;
            chunk_failures += 1;
        }
        if tel.is_enabled() {
            let done = t + 1;
            if done % MC_PROGRESS_CHUNK == 0 || done == trials {
                let labels = [("scheme", scheme_name.as_str())];
                tel.event("mc.progress", &labels, done);
                tel.counter(
                    "mc.trials",
                    &labels,
                    if done % MC_PROGRESS_CHUNK == 0 {
                        MC_PROGRESS_CHUNK
                    } else {
                        done % MC_PROGRESS_CHUNK
                    },
                );
                tel.counter("mc.failures", &labels, chunk_failures);
                chunk_failures = 0;
                tel.gauge("mc.rate", &labels, failures as f64 / done as f64);
            }
        }
    }
    WordErrorEstimate {
        // Guard the 0/0 shape explicitly: an empty run has rate 0, not NaN.
        rate: if trials == 0 {
            0.0
        } else {
            failures as f64 / trials as f64
        },
        trials,
        failures,
    }
}

/// [`word_error_rate`] on the deterministic parallel engine: the run is
/// cut by [`mc_shards`] into a thread-count-independent shard list, each
/// shard measured with its own split seed, and the per-shard estimates
/// merged in shard order via [`WordErrorEstimate::merged`] — so any
/// `threads >= 1` returns the identical estimate (the property the
/// determinism proptests pin down).
///
/// Note the sharded estimate differs from the single-stream
/// [`word_error_rate`] at equal `(trials, seed)` — the RNG streams are
/// split differently — but it is a Monte-Carlo estimate of the same
/// quantity with the same variance, and unlike the single-stream form it
/// scales to the paper's low-ε trial counts.
#[must_use]
pub fn word_error_rate_parallel(
    scheme: Scheme,
    k: usize,
    eps: f64,
    trials: u64,
    root_seed: u64,
    threads: usize,
) -> WordErrorEstimate {
    word_error_rate_parallel_traced(
        scheme,
        k,
        eps,
        trials,
        root_seed,
        threads,
        &Telemetry::off(),
    )
}

/// [`word_error_rate_parallel`] with merge-time telemetry. Shards run
/// *untraced* (per-trial progress events from concurrent shards would
/// interleave nondeterministically); instead, one `mc.progress` event
/// plus `mc.trials`/`mc.failures` counter increments are emitted **per
/// shard, at merge time, in shard order**, and the final `mc.rate` gauge
/// is set once — the recording is byte-identical for every thread count
/// and the estimate is exactly the untraced one.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn word_error_rate_parallel_traced(
    scheme: Scheme,
    k: usize,
    eps: f64,
    trials: u64,
    root_seed: u64,
    threads: usize,
    tel: &Telemetry,
) -> WordErrorEstimate {
    let shards = mc_shards(trials, root_seed);
    let estimates = run_shards(threads, &shards, |_, &(shard_trials, seed)| {
        word_error_rate(scheme, k, eps, shard_trials, seed)
    });
    merge_traced(scheme, tel, &estimates)
}

/// [`word_error_rate_parallel`] on the scalar reference path — the
/// sharded counterpart of [`word_error_rate_scalar`], kept so CI can
/// `cmp` batch-vs-scalar estimates at any thread count.
#[must_use]
pub fn word_error_rate_parallel_scalar(
    scheme: Scheme,
    k: usize,
    eps: f64,
    trials: u64,
    root_seed: u64,
    threads: usize,
) -> WordErrorEstimate {
    let shards = mc_shards(trials, root_seed);
    let estimates = run_shards(threads, &shards, |_, &(shard_trials, seed)| {
        word_error_rate_scalar(scheme, k, eps, shard_trials, seed)
    });
    WordErrorEstimate::merged(estimates)
}

fn merge_traced(
    scheme: Scheme,
    tel: &Telemetry,
    estimates: &[WordErrorEstimate],
) -> WordErrorEstimate {
    if tel.is_enabled() {
        let scheme_name = scheme.name();
        let labels = [("scheme", scheme_name.as_str())];
        let mut done = 0u64;
        let mut failures = 0u64;
        for shard in estimates {
            done += shard.trials;
            failures += shard.failures;
            tel.event("mc.progress", &labels, done);
            tel.counter("mc.trials", &labels, shard.trials);
            tel.counter("mc.failures", &labels, shard.failures);
        }
        if done > 0 {
            tel.gauge("mc.rate", &labels, failures as f64 / done as f64);
        }
    }
    WordErrorEstimate::merged(estimates.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::noise;

    fn assert_close(measured: &WordErrorEstimate, expect: f64, label: &str) {
        let tol = 4.0 * measured.confidence95() + 0.10 * expect;
        assert!(
            (measured.rate - expect).abs() < tol,
            "{label}: measured {} (±{}) vs analytic {expect}",
            measured.rate,
            measured.confidence95()
        );
    }

    #[test]
    fn uncoded_matches_eq7() {
        let (k, eps) = (8, 2e-3);
        let m = word_error_rate(Scheme::Uncoded, k, eps, 200_000, 11);
        assert_close(&m, noise::word_error_uncoded_exact(k, eps), "uncoded");
    }

    #[test]
    fn hamming_matches_eq8() {
        let (k, eps) = (8, 8e-3);
        let m = word_error_rate(Scheme::Hamming, k, eps, 400_000, 13);
        let expect = noise::word_error_hamming(k, 4, eps);
        assert_close(&m, expect, "hamming");
    }

    #[test]
    fn dap_matches_appendix_ii() {
        let (k, eps) = (8, 5e-3);
        let m = word_error_rate(Scheme::Dap, k, eps, 400_000, 17);
        let exact = noise::word_error_dap_exact(k, eps);
        let approx = noise::word_error_dap(k, eps);
        assert_close(&m, exact, "dap exact eq14");
        // The low-eps approximation is close to exact at this eps too.
        assert!((approx - exact).abs() / exact < 0.1);
    }

    #[test]
    fn bsc_matches_dap_reliability() {
        // Same code structure per phase -> same residual error.
        let (k, eps) = (8, 5e-3);
        let m = word_error_rate(Scheme::Bsc, k, eps, 300_000, 19);
        assert_close(&m, noise::word_error_dap_exact(k, eps), "bsc");
    }

    #[test]
    fn dapbi_matches_dap_over_k_plus_1() {
        // DAPBI protects k data bits plus the invert bit with a DAP(k+1).
        let (k, eps) = (8, 5e-3);
        let m = word_error_rate(Scheme::Dapbi, k, eps, 300_000, 23);
        // Failures require >=2 errors; a payload failure corrupts the word.
        let expect = noise::word_error_dap_exact(k + 1, eps);
        // The decoded *data* can still be right when the error lands only
        // in the invert position... both copies plus compensating data —
        // negligible; accept the payload-level bound within tolerance.
        assert_close(&m, expect, "dapbi");
    }

    #[test]
    fn ecc_beats_uncoded_at_matched_eps() {
        let eps = 3e-3;
        let unc = word_error_rate(Scheme::Uncoded, 8, eps, 100_000, 29);
        let dap = word_error_rate(Scheme::Dap, 8, eps, 100_000, 31);
        assert!(
            dap.rate < unc.rate / 5.0,
            "dap {} vs uncoded {}",
            dap.rate,
            unc.rate
        );
    }

    /// Edge cases (ISSUE satellite): zero trials, zero errors, all
    /// errors — every field stays well-defined, never NaN, and the
    /// degenerate 0-failure/all-failure shapes report the rule-of-three
    /// upper bound instead of a width-0 interval.
    #[test]
    fn confidence95_edge_cases_stay_finite() {
        // Zero trials: rate 0 (not 0/0 = NaN), infinite half-width.
        let empty = word_error_rate(Scheme::Uncoded, 8, 0.5, 0, 1);
        assert_eq!(empty.rate, 0.0, "zero-trial rate must not be NaN");
        assert!(empty.rate.is_finite());
        assert_eq!(empty.confidence95(), f64::INFINITY);
        // Zero errors: a clean run does NOT prove rate 0 — it bounds it
        // by the rule of three, 3/n.
        let clean = word_error_rate(Scheme::Uncoded, 8, 0.0, 1000, 1);
        assert_eq!(clean.failures, 0);
        assert_eq!(clean.rate, 0.0);
        assert_eq!(clean.confidence95(), 3.0 / 1000.0);
        // All errors: eps=1 flips every wire, every word fails; the
        // interval mirrors to [1 - 3/n, 1].
        let dirty = word_error_rate(Scheme::Uncoded, 8, 1.0, 1000, 1);
        assert_eq!(dirty.failures, 1000);
        assert_eq!(dirty.rate, 1.0);
        assert_eq!(dirty.confidence95(), 3.0 / 1000.0);
        // A hand-built NaN rate is caught by the guard too.
        let nan = WordErrorEstimate {
            rate: f64::NAN,
            trials: 10,
            failures: 0,
        };
        assert!(!nan.confidence95().is_nan());
    }

    /// ISSUE 9 satellite: the rule-of-three bound at the degenerate
    /// edges — 0 failures, all failures, and the 1-trial extreme (where
    /// 3/n > 1 must clamp to 1, a probability half-width can't exceed 1).
    #[test]
    fn confidence95_zero_failure_rule_of_three() {
        let zero_fail = WordErrorEstimate {
            rate: 0.0,
            trials: 1_000_000,
            failures: 0,
        };
        // The exact one-sided bound is 1 - 0.05^(1/n); 3/n approximates
        // it to within ~0.2% at this n. Never again a degenerate 0.
        let exact = 1.0 - 0.05f64.powf(1e-6);
        assert!(zero_fail.confidence95() > 0.0, "0-failure CI must not be 0");
        assert!((zero_fail.confidence95() - exact).abs() / exact < 5e-3);
        let all_fail = WordErrorEstimate {
            rate: 1.0,
            trials: 64,
            failures: 64,
        };
        assert_eq!(all_fail.confidence95(), 3.0 / 64.0);
        let one_trial = WordErrorEstimate {
            rate: 0.0,
            trials: 1,
            failures: 0,
        };
        assert_eq!(
            one_trial.confidence95(),
            1.0,
            "a single clean trial knows nothing: half-width clamps to 1"
        );
        let one_trial_fail = WordErrorEstimate {
            rate: 1.0,
            trials: 1,
            failures: 1,
        };
        assert_eq!(one_trial_fail.confidence95(), 1.0);
    }

    /// ISSUE 9 tentpole: the weighted tally embeds plain runs exactly
    /// (weight 1 per trial) and its merge recomputes, never averages.
    #[test]
    fn weighted_tally_embeds_plain_runs() {
        let plain = word_error_rate(Scheme::Uncoded, 8, 0.05, 10_000, 3);
        let w = plain.weighted();
        assert_eq!(w.trials, plain.trials);
        assert_eq!(w.failures, plain.failures);
        assert_eq!(w.rate(), plain.rate, "weight-1 tally is the plain rate");
        assert_eq!(w.mean_weight(), 1.0);
        // The unit-weight binomial variance matches the plain normal CI
        // up to the n/(n-1) Bessel correction.
        let n = plain.trials as f64;
        let ratio = w.confidence95() / plain.confidence95();
        assert!((ratio * ratio - n / (n - 1.0)).abs() < 1e-9);
    }

    /// ISSUE 9 satellite (shard-merge-order): weighted merge sums every
    /// field exactly in iteration order and equals the monolithic tally —
    /// mirroring `merged_preserves_tallies_and_recomputes_rate`.
    #[test]
    fn weighted_merge_preserves_sums_and_recomputes_rate() {
        let mut a = WeightedTally::zero();
        a.record(0.5, true);
        a.record(2.0, false);
        let mut b = WeightedTally::zero();
        b.record(0.25, true);
        b.record(1.0, true);
        b.record(1.0, false);
        let m = WeightedTally::merged([a, b]);
        assert_eq!(m.trials, 5);
        assert_eq!(m.failures, 3);
        assert_eq!(m.sum, 0.5 + 0.25 + 1.0);
        assert_eq!(m.sum_sq, 0.25 + 0.0625 + 1.0);
        assert_eq!(m.weighted_trials, 4.75);
        // Recomputed from merged sums, not averaged shard rates.
        assert_eq!(m.rate(), 1.75 / 5.0);
        // Monolithic tally recording the same stream agrees exactly.
        let mut mono = WeightedTally::zero();
        for (w, f) in [
            (0.5, true),
            (2.0, false),
            (0.25, true),
            (1.0, true),
            (1.0, false),
        ] {
            mono.record(w, f);
        }
        assert_eq!(m, mono);
        assert_eq!(m.confidence95(), mono.confidence95());
        // Identity and edge shapes.
        assert_eq!(WeightedTally::merged([]), WeightedTally::zero());
        assert_eq!(WeightedTally::zero().confidence95(), f64::INFINITY);
        let mut clean = WeightedTally::zero();
        clean.record(1.0, false);
        clean.record(1.0, false);
        assert_eq!(
            clean.confidence95(),
            1.0,
            "0 failures in 2 trials: 3/2 clamps to 1"
        );
        assert_eq!(clean.relative_ci95(), f64::INFINITY);
    }

    /// The traced variant is estimate-identical to the plain one and
    /// reports chunked trial counters that sum to the total.
    #[test]
    fn traced_runs_match_plain_and_report_progress() {
        use socbus_telemetry::Recorder;
        use std::rc::Rc;
        let (k, eps, seed) = (8, 5e-3, 41);
        let trials = 2 * MC_PROGRESS_CHUNK + 123;
        let plain = word_error_rate(Scheme::Dap, k, eps, trials, seed);
        let recorder = Rc::new(Recorder::new());
        let tel = Telemetry::from_recorder(&recorder);
        let traced = word_error_rate_traced(Scheme::Dap, k, eps, trials, seed, &tel);
        assert_eq!(plain, traced, "telemetry must not disturb the estimate");
        let labels = [("scheme", "DAP")];
        assert_eq!(recorder.counter_value("mc.trials", &labels), trials);
        assert_eq!(
            recorder.counter_value("mc.failures", &labels),
            traced.failures,
            "failure counter sums chunk deltas"
        );
        assert_eq!(
            recorder.gauge_value("mc.rate", &labels),
            Some(traced.rate),
            "final gauge is the final rate"
        );
        // 2 full chunks + the final partial chunk = 3 progress events.
        let stats = recorder.ring_stats();
        assert_eq!(stats.recorded, 3);
    }

    /// ISSUE 4 satellite: shard merge preserves tallies exactly and
    /// recomputes (never averages) the rate.
    #[test]
    fn merged_preserves_tallies_and_recomputes_rate() {
        let shards = [
            WordErrorEstimate {
                rate: 0.5,
                trials: 10,
                failures: 5,
            },
            WordErrorEstimate {
                rate: 0.01,
                trials: 1000,
                failures: 10,
            },
        ];
        let m = WordErrorEstimate::merged(shards);
        assert_eq!(m.trials, 1010);
        assert_eq!(m.failures, 15);
        // Recomputed from the merged tallies (15/1010 ≈ 0.01485), NOT
        // the shard-rate average (0.255) — unequal shards would bias it.
        assert!((m.rate - 15.0 / 1010.0).abs() < 1e-15);
        // The merged confidence interval is the monolithic run's: an
        // estimate built directly from the same totals agrees exactly.
        let mono = WordErrorEstimate {
            rate: 15.0 / 1010.0,
            trials: 1010,
            failures: 15,
        };
        assert_eq!(m, mono);
        assert_eq!(m.confidence95(), mono.confidence95());
    }

    /// Merge edge cases: empty input, empty shards, all-failure shards.
    #[test]
    fn merged_edge_cases() {
        let zero = WordErrorEstimate::merged([]);
        assert_eq!((zero.rate, zero.trials, zero.failures), (0.0, 0, 0));
        assert_eq!(zero.confidence95(), f64::INFINITY);
        // An empty shard (aborted or zero-length) contributes nothing.
        let empty = WordErrorEstimate {
            rate: 0.0,
            trials: 0,
            failures: 0,
        };
        let real = WordErrorEstimate {
            rate: 0.25,
            trials: 8,
            failures: 2,
        };
        let m = WordErrorEstimate::merged([empty, real, empty]);
        assert_eq!(m, real);
        // An all-failure shard merges to the exact failure count and the
        // one-sided rule-of-three interval when alone.
        let all_fail = WordErrorEstimate {
            rate: 1.0,
            trials: 16,
            failures: 16,
        };
        let solo = WordErrorEstimate::merged([all_fail]);
        assert_eq!(solo.rate, 1.0);
        assert_eq!(solo.confidence95(), 3.0 / 16.0);
        let mixed = WordErrorEstimate::merged([all_fail, real]);
        assert_eq!(mixed.trials, 24);
        assert_eq!(mixed.failures, 18);
        assert!((mixed.rate - 0.75).abs() < 1e-15);
    }

    /// The static decomposition covers every trial exactly once and is
    /// seeded purely by `(root, index)`.
    #[test]
    fn mc_shards_partition_the_trials() {
        for trials in [
            0,
            1,
            MC_SHARD_TRIALS - 1,
            MC_SHARD_TRIALS,
            3 * MC_SHARD_TRIALS + 7,
        ] {
            let shards = mc_shards(trials, 99);
            let total: u64 = shards.iter().map(|&(t, _)| t).sum();
            assert_eq!(total, trials, "trials={trials}");
            assert!(shards.iter().all(|&(t, _)| t > 0 && t <= MC_SHARD_TRIALS));
            let mut seeds: Vec<u64> = shards.iter().map(|&(_, s)| s).collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), shards.len(), "split seeds are distinct");
        }
        assert!(mc_shards(0, 99).is_empty());
    }

    /// The parallel estimate is invariant in the thread count — the
    /// direct (non-proptest) version of the determinism property.
    #[test]
    fn parallel_estimate_is_thread_count_invariant() {
        let trials = 2 * MC_SHARD_TRIALS + 4321;
        let one = word_error_rate_parallel(Scheme::Dap, 8, 5e-3, trials, 7, 1);
        for threads in [2, 3, 7, 16] {
            let n = word_error_rate_parallel(Scheme::Dap, 8, 5e-3, trials, 7, threads);
            assert_eq!(one, n, "threads={threads}");
        }
        assert_eq!(one.trials, trials);
    }

    /// ISSUE 4 satellite (progress-event fix): the merge-time-traced
    /// parallel run returns the identical estimate to the untraced one,
    /// and its telemetry is emitted once per shard in shard order.
    #[test]
    fn parallel_traced_matches_plain_and_reports_per_shard() {
        use socbus_telemetry::Recorder;
        use std::rc::Rc;
        let (k, eps, seed) = (8, 5e-3, 41);
        let trials = 2 * MC_SHARD_TRIALS + 123;
        let plain = word_error_rate_parallel(Scheme::Dap, k, eps, trials, seed, 4);
        let recorder = Rc::new(Recorder::new());
        let tel = Telemetry::from_recorder(&recorder);
        let traced = word_error_rate_parallel_traced(Scheme::Dap, k, eps, trials, seed, 4, &tel);
        assert_eq!(plain, traced, "telemetry must not disturb the estimate");
        let labels = [("scheme", "DAP")];
        assert_eq!(recorder.counter_value("mc.trials", &labels), trials);
        assert_eq!(
            recorder.counter_value("mc.failures", &labels),
            traced.failures
        );
        assert_eq!(recorder.gauge_value("mc.rate", &labels), Some(traced.rate));
        // One progress event per shard — emitted at merge, so the count
        // and order are fixed by the decomposition, not the scheduler.
        assert_eq!(
            recorder.ring_stats().recorded,
            mc_shards(trials, seed).len()
        );
    }

    #[test]
    fn parallel_matches_analytic_rate() {
        // The sharded estimator measures the same quantity as the
        // single-stream one: check it against the analytic formula.
        let (k, eps) = (8, 2e-3);
        let m = word_error_rate_parallel(Scheme::Uncoded, k, eps, 200_000, 11, 4);
        assert_close(&m, noise::word_error_uncoded_exact(k, eps), "parallel");
    }

    #[test]
    fn detection_only_codes_still_deliver_data() {
        // Parity detects but passes data through; residual rate tracks the
        // probability of >=1 data-bit error.
        let (k, eps) = (8, 2e-3);
        let m = word_error_rate(Scheme::Parity, k, eps, 200_000, 37);
        let expect = noise::word_error_uncoded_exact(k, eps);
        assert_close(&m, expect, "parity passthrough");
    }

    /// ISSUE 10 satellite (remainder handling): the batch path must be
    /// byte-identical to the scalar reference at trial counts that leave
    /// partial final blocks — 1, 63 (sub-block), 65 (one full block plus
    /// one word), 65537 (crosses MC_PROGRESS_CHUNK with a remainder) —
    /// and at block-aligned counts, across stateless, stateful, and
    /// LUT-decoded schemes.
    #[test]
    fn batch_path_is_byte_identical_to_scalar_at_odd_trials() {
        let eps = 2e-2;
        for scheme in [
            Scheme::Uncoded,
            Scheme::Dap,
            Scheme::BusInvert(2),
            Scheme::Ftc,
            Scheme::Bsc,
        ] {
            for trials in [0u64, 1, 63, 64, 65, 2 * 64 + 7] {
                let batch = word_error_rate(scheme, 8, eps, trials, 77);
                let scalar = word_error_rate_scalar(scheme, 8, eps, trials, 77);
                assert_eq!(batch, scalar, "{} at {trials} trials", scheme.name());
            }
        }
        // The long odd run, on a correcting scheme so failures are rare
        // but nonzero at this eps.
        let batch = word_error_rate(Scheme::Dap, 8, eps, 65_537, 77);
        let scalar = word_error_rate_scalar(Scheme::Dap, 8, eps, 65_537, 77);
        assert_eq!(batch, scalar, "DAP at 65537 trials");
        assert!(batch.failures > 0, "test must exercise the failure path");
    }

    /// ISSUE 10 satellite: batch and scalar telemetry streams agree —
    /// chunk boundaries fall at the same trial indices even though the
    /// batch path crosses them mid-block (MC_PROGRESS_CHUNK is not a
    /// multiple of 64).
    #[test]
    fn batch_telemetry_matches_scalar_chunking() {
        use socbus_telemetry::Recorder;
        use std::rc::Rc;
        let (k, eps, seed) = (8, 5e-3, 41);
        let trials = MC_PROGRESS_CHUNK + 123;
        let rec_b = Rc::new(Recorder::new());
        let batch = word_error_rate_traced(
            Scheme::Dap,
            k,
            eps,
            trials,
            seed,
            &Telemetry::from_recorder(&rec_b),
        );
        let rec_s = Rc::new(Recorder::new());
        let scalar = word_error_rate_scalar_traced(
            Scheme::Dap,
            k,
            eps,
            trials,
            seed,
            &Telemetry::from_recorder(&rec_s),
        );
        assert_eq!(batch, scalar);
        let labels = [("scheme", "DAP")];
        assert_eq!(
            rec_b.counter_value("mc.trials", &labels),
            rec_s.counter_value("mc.trials", &labels)
        );
        assert_eq!(
            rec_b.counter_value("mc.failures", &labels),
            rec_s.counter_value("mc.failures", &labels)
        );
        assert_eq!(
            rec_b.gauge_value("mc.rate", &labels),
            rec_s.gauge_value("mc.rate", &labels)
        );
        assert_eq!(rec_b.ring_stats().recorded, rec_s.ring_stats().recorded);
    }

    /// ISSUE 10 satellite: the sharded batch estimator equals the sharded
    /// scalar one at every thread count, including an odd total that
    /// leaves a remainder shard which itself ends mid-block.
    #[test]
    fn parallel_batch_equals_parallel_scalar_across_threads() {
        let trials = MC_SHARD_TRIALS + 4321;
        let scalar = word_error_rate_parallel_scalar(Scheme::Dap, 8, 5e-3, trials, 7, 1);
        for threads in [1, 2, 8] {
            let batch = word_error_rate_parallel(Scheme::Dap, 8, 5e-3, trials, 7, threads);
            assert_eq!(batch, scalar, "threads={threads}");
        }
    }

    #[test]
    fn cache_makes_builds_o_schemes() {
        // A sharded FTC sweep constructs 2 codecs per shard (enc + dec),
        // but the Fibonacci books and inverse decode tables come from the
        // process-wide kernel cache, so *codebook construction* count per
        // sweep stays O(schemes), not O(shards).
        //
        // `codebook_builds()` is a process-global counter and the test
        // harness runs other tests concurrently, so measure deltas and
        // bound them by the total number of distinct cache keys that can
        // ever exist: 24 raw FP books + 6 raw FT books + 16 FPC kernels +
        // 4 FTC group kernels = 50. Without the cache, *each* sweep below
        // would add >= 2 builds x 2 codecs x 16 shards = 64 on its own.
        let trials = 16 * MC_SHARD_TRIALS;
        assert_eq!(mc_shards(trials, 99).len(), 16);
        let before = socbus_codes::codebook_builds();
        let _ = word_error_rate_parallel(Scheme::Ftc, 3, 1e-3, trials, 99, 4);
        let _ = word_error_rate_parallel(Scheme::Ftc, 3, 1e-3, trials, 7, 4);
        let delta = socbus_codes::codebook_builds() - before;
        assert!(
            delta <= 50,
            "codebook builds must be bounded by distinct keys (50), \
             not shards (>= 64 per sweep if uncached): got {delta}"
        );
    }
}
