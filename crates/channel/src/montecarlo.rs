//! Monte-Carlo residual word-error measurement.
//!
//! Drives real encoder/decoder pairs through a noisy channel and counts
//! decoded-word failures — the experimental check of the paper's
//! eqs. (7)–(9) and Appendix II, run at error rates high enough to
//! observe (the analytic formulas then extrapolate to the 1e-20 design
//! point, exactly as the paper does).

use crate::awgn::BitFlipChannel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_codes::Scheme;
use socbus_model::Word;

/// Result of a word-error Monte-Carlo run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WordErrorEstimate {
    /// Observed residual word-error rate.
    pub rate: f64,
    /// Number of word transfers simulated.
    pub trials: u64,
    /// Number of erroneous decoded words.
    pub failures: u64,
}

impl WordErrorEstimate {
    /// Approximate 95% confidence half-width (normal approximation).
    #[must_use]
    pub fn confidence95(&self) -> f64 {
        if self.trials == 0 {
            return f64::INFINITY;
        }
        let p = self.rate;
        1.96 * (p * (1.0 - p) / self.trials as f64).sqrt()
    }
}

/// Measures the residual word-error rate of `scheme` at width `k` under
/// i.i.d. per-wire flip probability `eps`, over `trials` random words.
///
/// Encoder and decoder advance in lockstep (wire errors never desynchronize
/// the codecs in this crate: decoder state is data-independent).
#[must_use]
pub fn word_error_rate(
    scheme: Scheme,
    k: usize,
    eps: f64,
    trials: u64,
    seed: u64,
) -> WordErrorEstimate {
    let mut enc = scheme.build(k);
    let mut dec = scheme.build(k);
    let mut ch = BitFlipChannel::new(eps, seed ^ 0x5EED);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u64;
    for _ in 0..trials {
        let d = Word::from_bits(rng.gen::<u128>(), k);
        let sent = enc.encode(d);
        let received = ch.transmit(sent);
        if dec.decode(received) != d {
            failures += 1;
        }
    }
    WordErrorEstimate {
        rate: failures as f64 / trials as f64,
        trials,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::noise;

    fn assert_close(measured: &WordErrorEstimate, expect: f64, label: &str) {
        let tol = 4.0 * measured.confidence95() + 0.10 * expect;
        assert!(
            (measured.rate - expect).abs() < tol,
            "{label}: measured {} (±{}) vs analytic {expect}",
            measured.rate,
            measured.confidence95()
        );
    }

    #[test]
    fn uncoded_matches_eq7() {
        let (k, eps) = (8, 2e-3);
        let m = word_error_rate(Scheme::Uncoded, k, eps, 200_000, 11);
        assert_close(&m, noise::word_error_uncoded_exact(k, eps), "uncoded");
    }

    #[test]
    fn hamming_matches_eq8() {
        let (k, eps) = (8, 8e-3);
        let m = word_error_rate(Scheme::Hamming, k, eps, 400_000, 13);
        let expect = noise::word_error_hamming(k, 4, eps);
        assert_close(&m, expect, "hamming");
    }

    #[test]
    fn dap_matches_appendix_ii() {
        let (k, eps) = (8, 5e-3);
        let m = word_error_rate(Scheme::Dap, k, eps, 400_000, 17);
        let exact = noise::word_error_dap_exact(k, eps);
        let approx = noise::word_error_dap(k, eps);
        assert_close(&m, exact, "dap exact eq14");
        // The low-eps approximation is close to exact at this eps too.
        assert!((approx - exact).abs() / exact < 0.1);
    }

    #[test]
    fn bsc_matches_dap_reliability() {
        // Same code structure per phase -> same residual error.
        let (k, eps) = (8, 5e-3);
        let m = word_error_rate(Scheme::Bsc, k, eps, 300_000, 19);
        assert_close(&m, noise::word_error_dap_exact(k, eps), "bsc");
    }

    #[test]
    fn dapbi_matches_dap_over_k_plus_1() {
        // DAPBI protects k data bits plus the invert bit with a DAP(k+1).
        let (k, eps) = (8, 5e-3);
        let m = word_error_rate(Scheme::Dapbi, k, eps, 300_000, 23);
        // Failures require >=2 errors; a payload failure corrupts the word.
        let expect = noise::word_error_dap_exact(k + 1, eps);
        // The decoded *data* can still be right when the error lands only
        // in the invert position... both copies plus compensating data —
        // negligible; accept the payload-level bound within tolerance.
        assert_close(&m, expect, "dapbi");
    }

    #[test]
    fn ecc_beats_uncoded_at_matched_eps() {
        let eps = 3e-3;
        let unc = word_error_rate(Scheme::Uncoded, 8, eps, 100_000, 29);
        let dap = word_error_rate(Scheme::Dap, 8, eps, 100_000, 31);
        assert!(
            dap.rate < unc.rate / 5.0,
            "dap {} vs uncoded {}",
            dap.rate,
            unc.rate
        );
    }

    #[test]
    fn detection_only_codes_still_deliver_data() {
        // Parity detects but passes data through; residual rate tracks the
        // probability of >=1 data-bit error.
        let (k, eps) = (8, 2e-3);
        let m = word_error_rate(Scheme::Parity, k, eps, 200_000, 37);
        let expect = noise::word_error_uncoded_exact(k, eps);
        assert_close(&m, expect, "parity passthrough");
    }
}
