//! The adaptive driver: per-`(scheme, ε)` estimator selection and
//! relative-error-controlled certification.
//!
//! The right twist θ depends on which error weights dominate a scheme's
//! failure set — a single-error-correcting code at ε = 1e-6 wants the
//! tilt that makes weight-2 patterns common, a DEC code wants weight-3,
//! and an uncoded bus wants barely any tilt at all. Rather than encode
//! per-scheme analysis, [`plan`] runs a short **pilot** at each
//! candidate twist and keeps the one with the smallest pilot relative
//! CI; when *no* candidate reaches the failure set at pilot effort, the
//! cell falls back to [multilevel splitting](super::split), whose level
//! cascade reaches any failure set the decode contract bounds.
//!
//! [`certify`] then drives the chosen estimator in geometrically growing
//! batches, merging tallies in batch order (deterministic at any thread
//! count), until the 95% CI half-width is within the requested fraction
//! of the estimate or the word budget is exhausted — the loop behind
//! every `BENCH_rare.json` cell.

use super::split::{split_word_error_parallel, SplitConfig, SplitEstimate};
use super::twist::{is_parallel_occ, is_word_error, Twist};
use super::RareChannel;
use crate::montecarlo::WeightedTally;
use socbus_codes::Scheme;
use socbus_exec::shard_seed;
use socbus_telemetry::Telemetry;

/// Pilot trials per candidate twist.
pub const PILOT_TRIALS: u64 = 2_048;

/// Twisted-ε targets the pilot sweeps. Candidates are defined by where
/// the tilt *lands* (`ε_θ`), not by absolute θ — at ε = 1e-12 the tilt
/// needed to make errors common is θ ≈ 27, at ε = 1e-3 it is θ ≈ 6; a
/// fixed θ grid can't serve both, a target grid serves any ε.
const TWISTED_EPS_TARGETS: [f64; 7] = [0.02, 0.05, 0.1, 0.15, 0.25, 0.35, 0.5];

/// Candidate burst-occupancy odds boosts (burst channels only).
const BOOST_GRID: [f64; 3] = [1.0, 10.0, 100.0];

/// The tilt θ that maps flip probability `eps` to `target` under
/// exponential twisting: θ = logit(target) − logit(eps).
fn theta_for(eps: f64, target: f64) -> f64 {
    (target / (1.0 - target)).ln() - (eps / (1.0 - eps)).ln()
}

/// The pilot's candidate twists for `channel`: the identity twist plus
/// one tilt per [`TWISTED_EPS_TARGETS`] entry meaningfully above the
/// channel's base ε, each crossed with the burst boosts when the
/// channel has a burst state.
fn candidate_twists(channel: RareChannel) -> Vec<Twist> {
    let eps = channel.base_eps();
    let boosts: &[f64] = match channel {
        RareChannel::Iid { .. } => &BOOST_GRID[..1],
        RareChannel::Burst { .. } => &BOOST_GRID[..],
    };
    let mut out = Vec::new();
    for &burst_boost in boosts {
        out.push(Twist {
            theta: 0.0,
            burst_boost,
        });
        if eps > 0.0 && eps < 0.5 {
            for &target in &TWISTED_EPS_TARGETS {
                if target > 2.0 * eps {
                    out.push(Twist {
                        theta: theta_for(eps, target),
                        burst_boost,
                    });
                }
            }
        }
    }
    out
}

/// The estimator a pilot run selected for one cell.
#[derive(Clone, Debug, PartialEq)]
pub enum Method {
    /// Importance sampling at the given twist.
    Twist(Twist),
    /// Multilevel splitting with the given schedule (chosen when no
    /// pilot twist reached the failure set).
    Split(SplitConfig),
}

/// Result of [`plan`]: the chosen estimator plus the pilot evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Data bits per transfer.
    pub k: usize,
    /// Channel the cell integrates over.
    pub channel: RareChannel,
    /// The selected estimator.
    pub method: Method,
    /// Pilot estimate of the rate under the winning candidate (0 when
    /// the pilot never failed and splitting was selected).
    pub pilot_rate: f64,
    /// Total pilot words simulated across all candidates.
    pub pilot_words: u64,
}

/// Pilot-selects the estimator for `(scheme, k, channel)`: runs
/// [`PILOT_TRIALS`] importance-sampled words at every candidate twist,
/// keeps the candidate with the smallest pilot relative CI among those
/// that observed at least one failure, and falls back to
/// [`SplitConfig::for_scheme`] splitting when none did. Fully
/// deterministic in `seed` (each candidate gets a split sub-seed).
#[must_use]
pub fn plan(scheme: Scheme, k: usize, channel: RareChannel, seed: u64) -> Plan {
    let mut pilot_words = 0u64;
    let mut best: Option<(Twist, WeightedTally, f64)> = None;
    for (candidate, twist) in candidate_twists(channel).into_iter().enumerate() {
        let tally = is_word_error(
            scheme,
            k,
            channel,
            twist,
            PILOT_TRIALS,
            shard_seed(seed, candidate as u64),
        );
        pilot_words += PILOT_TRIALS;
        if tally.failures == 0 {
            continue;
        }
        let score = tally.relative_ci95();
        let better = match &best {
            None => true,
            Some((_, _, best_score)) => score < *best_score,
        };
        if better {
            best = Some((twist, tally, score));
        }
    }
    match best {
        Some((twist, tally, _)) => Plan {
            scheme,
            k,
            channel,
            method: Method::Twist(twist),
            pilot_rate: tally.rate(),
            pilot_words,
        },
        None => Plan {
            scheme,
            k,
            channel,
            // No twist reached the failure set at pilot effort: the
            // weight cascade will.
            method: Method::Split(SplitConfig::for_scheme(scheme, k, 4_096, 8)),
            pilot_rate: 0.0,
            pilot_words,
        },
    }
}

/// A certified word-error rate: estimate, CI, and the work that bought
/// it.
#[derive(Clone, Debug, PartialEq)]
pub struct Certification {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Data bits per transfer.
    pub k: usize,
    /// Channel the estimate integrates over.
    pub channel: RareChannel,
    /// The estimator that produced the numbers.
    pub method: Method,
    /// The word-error estimate.
    pub rate: f64,
    /// 95% CI half-width.
    pub ci95: f64,
    /// `ci95 / rate` (`INFINITY` when the rate is 0).
    pub rel_ci95: f64,
    /// Total simulated words, pilot included.
    pub words: u64,
    /// Whether the relative-CI target was met within the word budget.
    pub converged: bool,
}

/// Certifies the WER of `(scheme, k, channel)` to relative 95% CI
/// half-width `target_rel` using at most `max_words` simulated words
/// (pilot included): plans via [`plan`], then drives the chosen
/// estimator in geometrically growing batches merged in batch order —
/// so the stopping decision depends only on thread-count-invariant
/// merged tallies and the result is byte-identical at any `threads`.
#[must_use]
pub fn certify(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    target_rel: f64,
    max_words: u64,
    seed: u64,
    threads: usize,
) -> Certification {
    certify_traced(
        scheme,
        k,
        channel,
        target_rel,
        max_words,
        seed,
        threads,
        &Telemetry::off(),
    )
}

/// [`certify`] with `mc.rare.*` telemetry: one `mc.rare.certify.batch`
/// event per batch (value = words done) and final rate/CI gauges, all
/// emitted from the merge path in batch order.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn certify_traced(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    target_rel: f64,
    max_words: u64,
    seed: u64,
    threads: usize,
    tel: &Telemetry,
) -> Certification {
    let plan = plan(scheme, k, channel, seed);
    let mut words = plan.pilot_words;
    let scheme_name = if tel.is_enabled() {
        scheme.name()
    } else {
        String::new()
    };
    let labels = [("scheme", scheme_name.as_str())];
    // Every batch targets the occupancy of the full-budget horizon so
    // the merged burst estimate has a single well-defined target.
    let occupancy = channel.occupancy(max_words);
    let mut batch_words = 65_536u64.min(max_words.saturating_sub(words).max(1));
    let mut batch_index = 0u64;
    let (rate, ci95) = match &plan.method {
        Method::Twist(twist) => {
            let mut merged = WeightedTally::zero();
            while words < max_words {
                let trials = batch_words.min(max_words - words);
                let batch = is_parallel_occ(
                    scheme,
                    k,
                    channel,
                    *twist,
                    occupancy,
                    trials,
                    shard_seed(seed ^ 0xCE87, batch_index),
                    threads,
                    &Telemetry::off(),
                );
                merged = WeightedTally::merged([merged, batch]);
                words += trials;
                batch_index += 1;
                if tel.is_enabled() {
                    tel.event("mc.rare.certify.batch", &labels, words);
                }
                if merged.failures > 0 && merged.relative_ci95() <= target_rel {
                    break;
                }
                batch_words = batch_words.saturating_mul(2);
            }
            (merged.rate(), merged.confidence95())
        }
        Method::Split(config) => {
            let mut merged = SplitEstimate::zero();
            let per_replica = config.words_per_replica();
            while words < max_words {
                let budget = (max_words - words).min(batch_words);
                let replicas = (budget / per_replica).max(2);
                let batch_config = SplitConfig {
                    levels: config.levels.clone(),
                    effort: config.effort,
                    replicas,
                };
                let batch = split_word_error_parallel(
                    scheme,
                    k,
                    channel,
                    &batch_config,
                    shard_seed(seed ^ 0xCE87, batch_index),
                    threads,
                );
                merged = SplitEstimate::merged([merged, batch]);
                words += batch.trials;
                batch_index += 1;
                if tel.is_enabled() {
                    tel.event("mc.rare.certify.batch", &labels, words);
                }
                if merged.failures > 0 && merged.relative_ci95() <= target_rel {
                    break;
                }
                batch_words = batch_words.saturating_mul(2);
            }
            (merged.rate(), merged.confidence95())
        }
    };
    let rel = if rate > 0.0 {
        ci95 / rate
    } else {
        f64::INFINITY
    };
    if tel.is_enabled() {
        tel.gauge("mc.rare.rate", &labels, rate);
        tel.gauge("mc.rare.ci95", &labels, ci95);
    }
    Certification {
        scheme,
        k,
        channel,
        method: plan.method,
        rate,
        ci95,
        rel_ci95: rel,
        words,
        converged: rel <= target_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_picks_plain_sampling_at_high_eps() {
        // At ε = 0.05 an uncoded bus fails constantly: the untwisted
        // pilot has the best relative CI, or near it — the chosen theta
        // must be small.
        let p = plan(Scheme::Uncoded, 8, RareChannel::Iid { eps: 0.05 }, 1);
        match p.method {
            Method::Twist(t) => assert!(t.theta <= 3.0, "chose theta {}", t.theta),
            Method::Split(_) => panic!("high-eps cell must not need splitting"),
        }
        assert!(p.pilot_rate > 0.1);
        assert!(p.pilot_words >= PILOT_TRIALS);
    }

    #[test]
    fn plan_picks_aggressive_twist_at_low_eps() {
        // At ε = 1e-6 a DEC code fails only at weight >= 3 — untwisted
        // pilots see nothing; the target-grid tilt reaches in anyway.
        let p = plan(Scheme::BchDec, 4, RareChannel::Iid { eps: 1e-6 }, 2);
        match p.method {
            Method::Twist(t) => assert!(t.theta >= 5.0, "chose theta {}", t.theta),
            Method::Split(_) => panic!("target-grid pilot must reach the failure set"),
        }
        assert!(p.pilot_rate > 0.0);
    }

    #[test]
    fn theta_for_lands_on_target() {
        for eps in [1e-12, 1e-6, 1e-3, 0.01] {
            for target in TWISTED_EPS_TARGETS {
                let got = crate::rare::twist::twisted_eps(eps, theta_for(eps, target));
                assert!(
                    (got - target).abs() < 1e-9,
                    "eps={eps} target={target}: landed {got}"
                );
            }
        }
    }

    #[test]
    fn certify_meets_target_within_budget() {
        let cert = certify(
            Scheme::Dap,
            8,
            RareChannel::Iid { eps: 1e-4 },
            0.3,
            2_000_000,
            7,
            2,
        );
        assert!(cert.converged, "rel ci {}", cert.rel_ci95);
        assert!(cert.rel_ci95 <= 0.3);
        assert!(cert.words <= 2_000_000);
        assert!(cert.rate > 0.0);
    }

    #[test]
    fn certify_is_thread_count_invariant() {
        let ch = RareChannel::Iid { eps: 1e-3 };
        let a = certify(Scheme::Hamming, 8, ch, 0.3, 500_000, 11, 1);
        let b = certify(Scheme::Hamming, 8, ch, 0.3, 500_000, 11, 8);
        assert_eq!(a, b);
    }
}
