//! Rare-event word-error estimation: importance sampling, multilevel
//! splitting, and an exhaustive-enumeration oracle.
//!
//! The paper's central claim — unified crosstalk/error coding lets the
//! bus scale voltage down while *holding* a word-error target — is only
//! testable at production DSM targets (WER ≤ 1e-12) if the harness can
//! estimate rates plain Monte-Carlo cannot reach: at WER 1e-12 a direct
//! simulation needs ~1e14 trials for a single decimal digit. This module
//! closes that gap with three cooperating estimators:
//!
//! * [`twist`] — **importance sampling**: the per-wire flip distribution
//!   is exponentially tilted toward error-causing draws and every trial
//!   carries the exact likelihood ratio back to the nominal measure, so
//!   the weighted estimator is provably unbiased
//!   (`E[w·fail] = Σ_e q(e)·(p(e)/q(e))·fail(e) = p_fail`), with
//!   streaming variance tracking for a relative-error-controlled 95% CI.
//!   The Gilbert–Elliott burst channel additionally gets burst-occupancy
//!   twisting (the marginal of burst-length tilting).
//! * [`split`] — **fixed-effort multilevel splitting** keyed on the
//!   error *weight* (flipped-wire count) as the level function, for
//!   schemes where a single exponential twist under-covers the failure
//!   set.
//! * [`exact`] — the **exhaustive-enumeration oracle**: for small buses
//!   it sums channel probabilities over *all* error patterns (and all
//!   data words), producing the true WER the estimators must converge
//!   to. An unbiased-but-wrong IS estimator fails silently — the oracle
//!   suite in `tests/rare_props.rs` is what makes it fail loudly.
//! * [`adapt`] — the **adaptive driver**: a short pilot run picks the
//!   twist parameter per `(scheme, ε)` and falls back to splitting when
//!   every pilot twist leaves the failure set unhit.
//!
//! All estimators shard over `socbus_exec` with merged
//! `(sum, sum_sq, weighted_trials)` accumulators
//! ([`crate::montecarlo::WeightedTally`]) in shard order, so results are
//! byte-identical at any `--threads N`, and emit `mc.rare.*` telemetry.

pub mod adapt;
pub mod exact;
pub mod split;
pub mod twist;

pub use adapt::{certify, certify_traced, plan, Certification, Method, Plan};
pub use exact::{failure_profile, oracle_catalog, FailureProfile};
pub use split::{
    split_word_error, split_word_error_parallel, split_word_error_parallel_traced, SplitConfig,
    SplitEstimate,
};
pub use twist::{
    is_word_error, is_word_error_parallel, is_word_error_parallel_traced, is_word_error_traced,
    twisted_eps, Twist,
};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_codes::{batch_build, BatchCode, Scheme, WordBlock, BLOCK_WORDS};
use socbus_model::Word;

/// The noise process a rare-event estimator integrates over.
///
/// Both variants describe the same channels the plain Monte-Carlo and
/// fault layers simulate — [`crate::BitFlipChannel`] and
/// [`crate::GilbertElliott`] — reduced to the parameters that define
/// their word-error probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RareChannel {
    /// i.i.d. per-wire flips with probability `eps` (paper eq. (5)).
    Iid {
        /// Per-wire flip probability.
        eps: f64,
    },
    /// Gilbert–Elliott burst channel: a two-state Markov chain advanced
    /// once per word *before* corruption (matching
    /// [`crate::GilbertElliott`]), flipping wires i.i.d. at the state's
    /// rate.
    Burst {
        /// Flip probability in the good state.
        eps_good: f64,
        /// Flip probability in the burst state.
        eps_bad: f64,
        /// Good→bad transition probability per word.
        p_enter: f64,
        /// Bad→good transition probability per word.
        p_exit: f64,
    },
}

impl RareChannel {
    /// Short human-readable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            RareChannel::Iid { eps } => format!("iid(eps={eps:e})"),
            RareChannel::Burst {
                eps_good, eps_bad, ..
            } => format!("burst(good={eps_good:e},bad={eps_bad:e})"),
        }
    }

    /// The exact average burst-state occupancy over a `trials`-word run
    /// started in the good state (0 for the i.i.d. channel).
    ///
    /// The [`crate::GilbertElliott`] chain transitions *before* each
    /// word, so word `t` is in the bad state with probability
    /// `b_t = π + (p_enter - π)·r^t`, where `π = p_enter/(p_enter+p_exit)`
    /// is the stationary occupancy and `r = 1 - p_enter - p_exit` the
    /// mixing rate. This returns `(1/N)·Σ_{t<N} b_t` in closed form —
    /// the estimators and the oracle share it, so both target the exact
    /// same `N`-word chain-average WER, transient included.
    #[must_use]
    pub fn occupancy(&self, trials: u64) -> f64 {
        match *self {
            RareChannel::Iid { .. } => 0.0,
            RareChannel::Burst {
                p_enter, p_exit, ..
            } => {
                if trials == 0 || p_enter <= 0.0 {
                    return 0.0;
                }
                let sum = p_enter + p_exit;
                if sum <= 0.0 {
                    return 0.0;
                }
                let pi = p_enter / sum;
                let r = 1.0 - sum;
                let n = trials as f64;
                if (1.0 - r).abs() < 1e-12 {
                    return p_enter; // chain frozen at b_0
                }
                // Geometric-series average of b_t = pi + (b_0 - pi) r^t.
                pi + (p_enter - pi) * (1.0 - r.powf(n)) / (n * (1.0 - r))
            }
        }
    }

    /// The flip probability used when the channel has no state (i.i.d.),
    /// or in the *good* state (burst).
    #[must_use]
    pub fn base_eps(&self) -> f64 {
        match *self {
            RareChannel::Iid { eps } => eps,
            RareChannel::Burst { eps_good, .. } => eps_good,
        }
    }
}

/// Seed salt separating the flip-draw RNG stream from the data stream —
/// the same constant [`crate::montecarlo::word_error_rate_traced`] uses,
/// which is what lets zero-twist importance sampling reproduce the plain
/// estimator byte for byte.
pub(crate) const FLIP_SEED_SALT: u64 = 0x5EED;

/// The per-trial codec stream shared by the IS and splitting estimators:
/// persistent encoder/decoder pair (endpoint state advances across
/// trials, exactly like [`crate::montecarlo::word_error_rate`]) plus the
/// uniform data-word stream. Runs on the bit-sliced batch codecs; a
/// single-pattern call is the one-word block special case, so per-trial
/// and per-block callers stay on one byte-identical code path.
pub(crate) struct TrialStream {
    enc: Box<dyn BatchCode>,
    dec: Box<dyn BatchCode>,
    data_rng: StdRng,
    k: usize,
    wires: usize,
}

impl TrialStream {
    /// A stream for `scheme` at width `k`, data seeded by `seed` (the
    /// flip draws live in the caller's separate RNG).
    pub(crate) fn new(scheme: Scheme, k: usize, seed: u64) -> TrialStream {
        let enc = batch_build(scheme, k);
        let dec = batch_build(scheme, k);
        let wires = enc.wires();
        TrialStream {
            enc,
            dec,
            data_rng: StdRng::seed_from_u64(seed),
            k,
            wires,
        }
    }

    /// Physical bus width in wires.
    pub(crate) fn wires(&self) -> usize {
        self.wires
    }

    /// Runs one block of transfers: draws the next `patterns.len()` data
    /// words (one `u128` per trial, in trial order), encodes the block,
    /// XORs error pattern `j` onto codeword `j`, decodes, and returns the
    /// failure mask (bit `j` set when decoded word `j` differs from the
    /// sent data). Advances both codec states across the whole block —
    /// identical draw counts and codec-state trajectory to running the
    /// trials one at a time.
    pub(crate) fn fails_with_patterns(&mut self, patterns: &[u128]) -> u64 {
        let n = patterns.len();
        debug_assert!(n <= BLOCK_WORDS, "pattern block too large");
        if n == 0 {
            return 0;
        }
        let words: Vec<Word> = (0..n)
            .map(|_| Word::from_bits(self.data_rng.gen::<u128>(), self.k))
            .collect();
        let data = WordBlock::from_words(&words);
        let mut received = self.enc.encode(&data);
        let wire_mask = if self.wires >= 128 {
            u128::MAX
        } else {
            (1u128 << self.wires) - 1
        };
        for (j, &p) in patterns.iter().enumerate() {
            let mut rem = p & wire_mask;
            while rem != 0 {
                received.flip_bit(rem.trailing_zeros() as usize, j);
                rem &= rem - 1;
            }
        }
        let out = self.dec.decode(&received);
        (0..self.k).fold(0u64, |acc, i| acc | (out.lane(i) ^ data.lane(i)))
    }

    /// One transfer: [`TrialStream::fails_with_patterns`] on a one-word
    /// block.
    pub(crate) fn fails_with_pattern(&mut self, pattern: u128) -> bool {
        self.fails_with_patterns(&[pattern]) == 1
    }
}
