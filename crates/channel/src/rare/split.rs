//! Fixed-effort multilevel splitting keyed on error weight.
//!
//! Importance sampling with one exponential twist concentrates samples
//! around a single error weight; schemes whose failure set mixes weights
//! (mis-correction at `t+1` *and* detection escapes at higher weights)
//! can be under-covered by any single θ. Splitting avoids choosing: the
//! rare event `{decode fails}` is reached through a nested sequence of
//! less-rare events keyed by the error *weight* `W(e)` (flipped-wire
//! count),
//!
//! ```text
//! {W ≥ L_1} ⊇ {W ≥ L_2} ⊇ … ⊇ {W ≥ L_m} ⊇ {fail}
//! ```
//!
//! where the last level `L_m ≤ t+1` is sound by the decode contract —
//! a scheme correcting `t` errors cannot fail on patterns of weight
//! ≤ `t`, so the failure set lives entirely inside `{W ≥ t+1}`. Each
//! stage runs a fixed effort of samples from the previous conditional
//! `p(·|W ≥ L_{l−1})` (via an exact Metropolis kernel: redraw one wire's
//! flip from its unconditional Bernoulli, accept iff the constraint
//! still holds — the acceptance ratio collapses to the indicator, so
//! the conditional is invariant) and measures the fraction reaching the
//! next level; the word-error probability is the product of the stage
//! fractions times the final conditional failure fraction.
//!
//! Replicas are the shard unit: independent replicas run on
//! [`socbus_exec::run_shards`] and merge in replica order, so estimates
//! are byte-identical at any thread count, and the replica spread yields
//! the confidence interval. An empty level schedule degrades *exactly*
//! to plain Monte-Carlo (the regression suite pins byte-equality with
//! [`crate::montecarlo::word_error_rate`]).

use super::{RareChannel, TrialStream, FLIP_SEED_SALT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_codes::Scheme;
use socbus_exec::{run_shards, shard_seed};
use socbus_telemetry::Telemetry;

/// The level schedule and effort of one splitting run.
#[derive(Clone, Debug, PartialEq)]
pub struct SplitConfig {
    /// Strictly increasing error-weight thresholds `L_1 < … < L_m`.
    /// Zero thresholds condition on nothing and are dropped at
    /// construction; an empty schedule is plain Monte-Carlo.
    pub levels: Vec<usize>,
    /// Samples per stage per replica.
    pub effort: u64,
    /// Independent replicas (the shard/CI unit).
    pub replicas: u64,
}

impl SplitConfig {
    /// A schedule with the given levels (zeros dropped, must be strictly
    /// increasing after that).
    ///
    /// # Panics
    ///
    /// Panics if the nonzero levels are not strictly increasing, or if
    /// `effort` or `replicas` is 0.
    #[must_use]
    pub fn new(levels: Vec<usize>, effort: u64, replicas: u64) -> SplitConfig {
        assert!(
            effort > 0 && replicas > 0,
            "effort and replicas must be > 0"
        );
        let levels: Vec<usize> = levels.into_iter().filter(|&l| l > 0).collect();
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly increasing: {levels:?}"
        );
        SplitConfig {
            levels,
            effort,
            replicas,
        }
    }

    /// The canonical schedule for `scheme` at width `k`: one level per
    /// weight from 1 through `t + 1` (`t` = guaranteed corrected
    /// errors), so the last level provably contains the failure set.
    #[must_use]
    pub fn for_scheme(scheme: Scheme, k: usize, effort: u64, replicas: u64) -> SplitConfig {
        let t = scheme.build(k).correctable_errors();
        SplitConfig::new((1..=t + 1).collect(), effort, replicas)
    }

    /// The degenerate schedule: no levels — plain Monte-Carlo with
    /// `effort` words per replica.
    #[must_use]
    pub fn direct(effort: u64, replicas: u64) -> SplitConfig {
        SplitConfig::new(Vec::new(), effort, replicas)
    }

    /// Simulated words per replica: `effort` per splitting stage plus
    /// `effort` for the final failure-evaluation stage.
    #[must_use]
    pub fn words_per_replica(&self) -> u64 {
        self.effort * (self.levels.len() as u64 + 1)
    }
}

/// Result of a multilevel-splitting run: per-replica probability
/// estimates reduced to the order-deterministic sums that shard-merge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitEstimate {
    /// Σ of per-replica probability estimates.
    pub sum: f64,
    /// Σ of squared per-replica estimates.
    pub sum_sq: f64,
    /// Number of replicas merged in.
    pub replicas: u64,
    /// Total simulated words across all replicas and stages.
    pub trials: u64,
    /// Raw failing-decode count in the final stages (diagnostic; 0 means
    /// the failure set was never reached and the estimate is 0).
    pub failures: u64,
}

impl SplitEstimate {
    /// The empty estimate (identity of [`SplitEstimate::merged`]).
    #[must_use]
    pub fn zero() -> SplitEstimate {
        SplitEstimate {
            sum: 0.0,
            sum_sq: 0.0,
            replicas: 0,
            trials: 0,
            failures: 0,
        }
    }

    /// The word-error estimate: mean of the per-replica estimates (each
    /// replica is unbiased, so the mean is).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.replicas == 0 {
            0.0
        } else {
            self.sum / self.replicas as f64
        }
    }

    /// 95% half-width from the replica spread (normal approximation on
    /// the replica mean). Falls back to the rule-of-three bound over the
    /// total simulated words when no failure was ever observed, and to
    /// `INFINITY` with no replicas — mirroring
    /// [`crate::montecarlo::WeightedTally::confidence95`].
    #[must_use]
    pub fn confidence95(&self) -> f64 {
        if self.replicas == 0 {
            return f64::INFINITY;
        }
        if self.failures == 0 {
            return (3.0 / self.trials.max(1) as f64).min(1.0);
        }
        if self.replicas < 2 {
            // One replica has no spread information; bound by the
            // estimate itself (one-sided, conservative).
            return self.rate();
        }
        let r = self.replicas as f64;
        let mean = self.sum / r;
        let var = ((self.sum_sq / r - mean * mean) * (r / (r - 1.0))).max(0.0);
        1.96 * (var / r).sqrt()
    }

    /// Relative 95% half-width; `INFINITY` when the rate is 0.
    #[must_use]
    pub fn relative_ci95(&self) -> f64 {
        let r = self.rate();
        if r > 0.0 {
            self.confidence95() / r
        } else {
            f64::INFINITY
        }
    }

    /// Merges per-replica estimates in iteration order — every field a
    /// plain sum, so the merge is order-deterministic (float sums) and
    /// exact (integer tallies), mirroring
    /// [`crate::montecarlo::WeightedTally::merged`].
    #[must_use]
    pub fn merged(parts: impl IntoIterator<Item = SplitEstimate>) -> SplitEstimate {
        let mut out = SplitEstimate::zero();
        for p in parts {
            out.sum += p.sum;
            out.sum_sq += p.sum_sq;
            out.replicas += p.replicas;
            out.trials += p.trials;
            out.failures += p.failures;
        }
        out
    }
}

/// Weight of an error pattern (flipped-wire count).
fn weight(pattern: u128) -> usize {
    pattern.count_ones() as usize
}

/// Draws a fresh i.i.d. error pattern at rate `eps` — the identical
/// per-wire draw shape as [`crate::BitFlipChannel::transmit`], which is
/// what makes the level-free schedule reproduce plain Monte-Carlo byte
/// for byte.
fn draw_pattern(rng: &mut StdRng, wires: usize, eps: f64) -> u128 {
    let mut pattern = 0u128;
    for i in 0..wires {
        if rng.gen::<f64>() < eps {
            pattern |= 1u128 << i;
        }
    }
    pattern
}

/// One sweep of the Metropolis kernel preserving `p(·|W ≥ floor)`:
/// `wires` single-site moves, each redrawing one uniformly chosen wire's
/// flip from its unconditional Bernoulli and accepting iff the
/// constraint still holds (the Hastings ratio is exactly the indicator —
/// see the module docs).
fn mutate(rng: &mut StdRng, pattern: u128, wires: usize, eps: f64, floor: usize) -> u128 {
    let mut cur = pattern;
    for _ in 0..wires {
        let wire = rng.gen_range(0..wires);
        let bit = 1u128 << wire;
        let proposed = if rng.gen::<f64>() < eps {
            cur | bit
        } else {
            cur & !bit
        };
        if weight(proposed) >= floor {
            cur = proposed;
        }
    }
    cur
}

/// One replica: the full level cascade at i.i.d. rate `eps`, returning
/// `(probability estimate, failing decodes)`.
fn split_replica(
    scheme: Scheme,
    k: usize,
    eps: f64,
    config: &SplitConfig,
    seed: u64,
) -> (f64, u64) {
    let mut stream = TrialStream::new(scheme, k, seed);
    let mut flip_rng = StdRng::seed_from_u64(seed ^ FLIP_SEED_SALT);
    let wires = stream.wires();
    let effort = config.effort;
    if config.levels.is_empty() {
        // Degenerate schedule: plain Monte-Carlo, interleaved per trial
        // exactly like `word_error_rate` (pattern draw then decode).
        let mut failures = 0u64;
        for _ in 0..effort {
            let pattern = draw_pattern(&mut flip_rng, wires, eps);
            if stream.fails_with_pattern(pattern) {
                failures += 1;
            }
        }
        return (failures as f64 / effort as f64, failures);
    }
    let mut p_hat = 1.0f64;
    let mut seeds: Vec<u128> = Vec::new();
    for (stage, &level) in config.levels.iter().enumerate() {
        let mut hits: Vec<u128> = Vec::new();
        if stage == 0 {
            // Entry stage: fresh unconditional draws.
            for _ in 0..effort {
                let pattern = draw_pattern(&mut flip_rng, wires, eps);
                if weight(pattern) >= level {
                    hits.push(pattern);
                }
            }
        } else {
            let floor = config.levels[stage - 1];
            for j in 0..effort {
                let from = seeds[j as usize % seeds.len()];
                let pattern = mutate(&mut flip_rng, from, wires, eps, floor);
                if weight(pattern) >= level {
                    hits.push(pattern);
                }
            }
        }
        p_hat *= hits.len() as f64 / effort as f64;
        if hits.is_empty() {
            // Cascade extinct: the estimate for this replica is 0.
            return (0.0, 0);
        }
        seeds = hits;
    }
    // Final stage: samples conditioned on the last level, decoded for
    // real. The last level bounds the failure set from above (decode
    // contract), so this conditional fraction completes the product.
    let floor = *config.levels.last().expect("nonempty levels");
    let mut failures = 0u64;
    for j in 0..effort {
        let from = seeds[j as usize % seeds.len()];
        let pattern = mutate(&mut flip_rng, from, wires, eps, floor);
        if stream.fails_with_pattern(pattern) {
            failures += 1;
        }
    }
    (p_hat * failures as f64 / effort as f64, failures)
}

/// Multilevel-splitting word-error estimate of `scheme` at width `k`
/// through `channel` under `config`, all replicas sequential
/// (= [`split_word_error_parallel`] at `threads = 1`).
///
/// A [`RareChannel::Burst`] channel is handled by exact chain
/// marginalization: each replica runs the cascade once per state and
/// mixes the two estimates by the closed-form average occupancy — the
/// identical quantity [`super::exact::FailureProfile::wer_channel`]
/// computes.
#[must_use]
pub fn split_word_error(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    config: &SplitConfig,
    root_seed: u64,
) -> SplitEstimate {
    split_word_error_parallel(scheme, k, channel, config, root_seed, 1)
}

/// [`split_word_error`] on the deterministic parallel engine: replicas
/// are the shards, each seeded by [`shard_seed`] from the root seed and
/// replica index, merged in replica order via [`SplitEstimate::merged`]
/// — byte-identical at any `threads >= 1`.
#[must_use]
pub fn split_word_error_parallel(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    config: &SplitConfig,
    root_seed: u64,
    threads: usize,
) -> SplitEstimate {
    split_word_error_parallel_traced(
        scheme,
        k,
        channel,
        config,
        root_seed,
        threads,
        &Telemetry::off(),
    )
}

/// [`split_word_error_parallel`] with merge-time `mc.rare.split.*`
/// telemetry: one `mc.rare.split.replica` event plus trial/failure
/// counter increments per replica in replica order, and final rate/CI
/// gauges — thread-count invariant, like every traced estimator here.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn split_word_error_parallel_traced(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    config: &SplitConfig,
    root_seed: u64,
    threads: usize,
    tel: &Telemetry,
) -> SplitEstimate {
    let shards: Vec<u64> = (0..config.replicas)
        .map(|r| shard_seed(root_seed, r))
        .collect();
    // Burst marginalization: mix per-state cascades at the closed-form
    // occupancy over this run's total word budget.
    let total_words = config.words_per_replica() * config.replicas;
    let estimates = run_shards(threads, &shards, |_, &seed| {
        let (p_hat, failures) = match channel {
            RareChannel::Iid { eps } => split_replica(scheme, k, eps, config, seed),
            RareChannel::Burst {
                eps_good, eps_bad, ..
            } => {
                let q = channel.occupancy(total_words);
                let (p_good, f_good) = split_replica(scheme, k, eps_good, config, seed);
                let (p_bad, f_bad) = split_replica(scheme, k, eps_bad, config, seed ^ 0xB1_A5ED);
                (q * p_bad + (1.0 - q) * p_good, f_good + f_bad)
            }
        };
        let words = match channel {
            RareChannel::Iid { .. } => config.words_per_replica(),
            RareChannel::Burst { .. } => 2 * config.words_per_replica(),
        };
        SplitEstimate {
            sum: p_hat,
            sum_sq: p_hat * p_hat,
            replicas: 1,
            trials: words,
            failures,
        }
    });
    if tel.is_enabled() {
        let scheme_name = scheme.name();
        let labels = [("scheme", scheme_name.as_str())];
        let mut done = 0u64;
        for replica in &estimates {
            done += 1;
            tel.event("mc.rare.split.replica", &labels, done);
            tel.counter("mc.rare.split.trials", &labels, replica.trials);
            tel.counter("mc.rare.split.failures", &labels, replica.failures);
        }
        let merged = SplitEstimate::merged(estimates.iter().copied());
        if merged.replicas > 0 {
            tel.gauge("mc.rare.split.rate", &labels, merged.rate());
            tel.gauge("mc.rare.split.ci95", &labels, merged.confidence95());
        }
    }
    SplitEstimate::merged(estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::word_error_rate;

    #[test]
    fn config_normalizes_and_guards() {
        let c = SplitConfig::new(vec![0, 1, 3], 100, 4);
        assert_eq!(c.levels, vec![1, 3]);
        assert_eq!(SplitConfig::direct(10, 2).levels, Vec::<usize>::new());
        let auto = SplitConfig::for_scheme(Scheme::Dap, 8, 100, 4);
        assert_eq!(auto.levels, vec![1, 2], "DAP corrects 1: levels 1..=2");
        assert_eq!(auto.words_per_replica(), 300);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn config_rejects_non_increasing_levels() {
        let _ = SplitConfig::new(vec![2, 2], 100, 1);
    }

    #[test]
    fn direct_schedule_is_plain_monte_carlo_byte_for_byte() {
        // ISSUE 9 satellite: splitting with a trivial schedule degrades
        // to plain MC *exactly* — same RNG streams, same failure count.
        let (scheme, k, eps, seed) = (Scheme::Hamming, 8, 0.02, 97);
        let config = SplitConfig::direct(20_000, 1);
        let split = split_word_error(scheme, k, RareChannel::Iid { eps }, &config, seed);
        // Replica 0 runs at shard_seed(seed, 0); compare the plain
        // estimator at that same derived seed.
        let plain = word_error_rate(scheme, k, eps, 20_000, shard_seed(seed, 0));
        assert_eq!(split.failures, plain.failures, "identical failure stream");
        assert_eq!(split.rate(), plain.rate, "identical rate, bit for bit");
    }

    #[test]
    fn mutation_preserves_constraint_and_marginal() {
        // The kernel must never leave the constraint set, and its
        // stationary weight distribution must match the conditional
        // binomial (chi-square-free sanity: mean within 3 sigma).
        let mut rng = StdRng::seed_from_u64(5);
        let (wires, eps, floor) = (10, 0.3, 2);
        let mut cur = (1u128 << floor) - 1; // weight == floor
        let mut sum_w = 0.0;
        let samples = 20_000;
        for _ in 0..samples {
            cur = mutate(&mut rng, cur, wires, eps, floor);
            assert!(weight(cur) >= floor);
            sum_w += weight(cur) as f64;
        }
        // Conditional mean of Binomial(10, 0.3) given W >= 2.
        let mut num = 0.0;
        let mut den = 0.0;
        for w in floor..=wires {
            let mut c = 1.0;
            for i in 0..w {
                c *= (wires - i) as f64 / (i + 1) as f64;
            }
            let p = c * eps.powi(w as i32) * (1.0 - eps).powi((wires - w) as i32);
            num += w as f64 * p;
            den += p;
        }
        let expect = num / den;
        let got = sum_w / samples as f64;
        assert!(
            (got - expect).abs() < 0.05,
            "conditional mean {got} vs exact {expect}"
        );
    }

    #[test]
    fn split_is_thread_count_invariant() {
        let config = SplitConfig::for_scheme(Scheme::Dap, 8, 2_000, 8);
        let ch = RareChannel::Iid { eps: 1e-3 };
        let one = split_word_error_parallel(Scheme::Dap, 8, ch, &config, 3, 1);
        let eight = split_word_error_parallel(Scheme::Dap, 8, ch, &config, 3, 8);
        assert_eq!(one, eight);
        assert!(one.failures > 0, "cascade must reach the failure set");
    }

    #[test]
    fn split_estimate_merge_mirrors_weighted_tally() {
        let a = SplitEstimate {
            sum: 0.5,
            sum_sq: 0.25,
            replicas: 1,
            trials: 100,
            failures: 3,
        };
        let b = SplitEstimate {
            sum: 0.1,
            sum_sq: 0.01,
            replicas: 1,
            trials: 100,
            failures: 1,
        };
        let m = SplitEstimate::merged([a, b]);
        assert_eq!(m.replicas, 2);
        assert_eq!(m.rate(), 0.3);
        assert_eq!(m.trials, 200);
        assert_eq!(SplitEstimate::merged([]), SplitEstimate::zero());
        assert_eq!(SplitEstimate::zero().confidence95(), f64::INFINITY);
        let clean = SplitEstimate {
            sum: 0.0,
            sum_sq: 0.0,
            replicas: 4,
            trials: 1000,
            failures: 0,
        };
        assert_eq!(clean.confidence95(), 3.0 / 1000.0, "rule of three");
        assert_eq!(clean.relative_ci95(), f64::INFINITY);
    }
}
