//! Importance-sampled word-error estimation via exponential twisting.
//!
//! The per-wire flip probability is tilted from the nominal `ε` to
//! `ε_θ = ε·e^θ / (ε·e^θ + 1 − ε)` — the exponentially twisted Bernoulli
//! measure. Each trial draws its error pattern under `ε_θ` and carries
//! the exact likelihood ratio back to the nominal measure:
//!
//! ```text
//! w(e) = Π_wires  (ε/ε_θ)^[flipped] · ((1−ε)/(1−ε_θ))^[kept]
//! ```
//!
//! so `E_θ[w·fail] = Σ_e q_θ(e)·(p(e)/q_θ(e))·fail(e) = p_fail` — the
//! estimator is unbiased for *any* θ, and a good θ concentrates samples
//! on the error weights that dominate the failure set, shrinking the
//! variance by orders of magnitude at low ε.
//!
//! For the Gilbert–Elliott burst channel the chain is marginalized
//! *exactly*: word `t` is in the burst state with closed-form probability
//! `b_t` ([`RareChannel::occupancy`] averages it), the sampler draws each
//! trial's state from a `burst_boost`-tilted occupancy with its own
//! likelihood ratio, and the per-wire twist applies within the state.
//! Tilting the marginal rather than the path avoids the classic
//! path-weight degeneration of chain-level twisting (a product of
//! per-step ratios over millions of steps has unbounded variance).
//!
//! Zero twist (`Twist::NONE`) is special-cased to use `ε` *exactly* —
//! same flip-RNG stream, draw count, and threshold as
//! [`crate::BitFlipChannel`] — so it reproduces
//! [`crate::montecarlo::word_error_rate`] byte for byte; the regression
//! suite pins that down.

use super::{RareChannel, TrialStream, FLIP_SEED_SALT};
use crate::montecarlo::{mc_shards, WeightedTally, MC_PROGRESS_CHUNK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_codes::{Scheme, BLOCK_WORDS};
use socbus_exec::run_shards;
use socbus_telemetry::Telemetry;

/// The sampling-measure tilt of one importance-sampled run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Twist {
    /// Exponential tilt θ of the per-wire flip probability; `0` samples
    /// the nominal measure.
    pub theta: f64,
    /// Multiplicative odds boost on the burst-state occupancy of a
    /// [`RareChannel::Burst`] channel; `1` leaves the chain marginal
    /// untouched. Ignored for i.i.d. channels.
    pub burst_boost: f64,
}

impl Twist {
    /// The identity twist: sample the nominal measure, all weights 1.
    pub const NONE: Twist = Twist {
        theta: 0.0,
        burst_boost: 1.0,
    };

    /// A pure per-wire tilt (no burst boost).
    #[must_use]
    pub fn theta(theta: f64) -> Twist {
        Twist {
            theta,
            burst_boost: 1.0,
        }
    }
}

/// The exponentially twisted flip probability
/// `ε_θ = ε·e^θ / (ε·e^θ + 1 − ε)`.
///
/// `θ = 0` returns `ε` **exactly** (bitwise, not just approximately):
/// the zero-twist estimator must draw the identical flip pattern to the
/// plain channel, and `ε·1.0/(ε·1.0 + 1 − ε)` is not guaranteed to
/// round back to `ε`.
#[must_use]
pub fn twisted_eps(eps: f64, theta: f64) -> f64 {
    if theta == 0.0 {
        return eps;
    }
    let tilted = eps * theta.exp();
    tilted / (tilted + (1.0 - eps))
}

/// The boosted burst occupancy `q' = q·B / (q·B + 1 − q)` (odds scaled
/// by `B`); `B = 1` returns `q` exactly, mirroring [`twisted_eps`].
fn boosted_occupancy(q: f64, boost: f64) -> f64 {
    if boost == 1.0 {
        return q;
    }
    let tilted = q * boost;
    tilted / (tilted + (1.0 - q))
}

/// One single-threaded shard of the IS estimator: `trials` words of
/// `scheme` at width `k` through `channel` sampled under `twist`, with
/// the burst occupancy `occupancy` fixed by the caller (the *whole-run*
/// average — every shard of one run must target the same marginal or the
/// sharded estimate would depend on the decomposition).
#[allow(clippy::too_many_arguments)]
fn is_shard(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    twist: Twist,
    occupancy: f64,
    trials: u64,
    seed: u64,
    tel: &Telemetry,
) -> WeightedTally {
    let mut stream = TrialStream::new(scheme, k, seed);
    let mut flip_rng = StdRng::seed_from_u64(seed ^ FLIP_SEED_SALT);
    let wires = stream.wires();
    let mut tally = WeightedTally::zero();
    let scheme_name = if tel.is_enabled() {
        scheme.name()
    } else {
        String::new()
    };
    // Per-state twisted parameters are trial-invariant: precompute the
    // (ε, ε_θ, flip-ratio, keep-ratio) tuple per reachable state.
    let params = |eps: f64| -> (f64, f64, f64) {
        let eps_t = twisted_eps(eps, twist.theta);
        if eps_t == eps {
            // Exact zero-twist (or degenerate ε ∈ {0, 1}): unit weights,
            // avoiding the 0/0 shape at ε = 0.
            (eps_t, 1.0, 1.0)
        } else {
            (eps_t, eps / eps_t, (1.0 - eps) / (1.0 - eps_t))
        }
    };
    let iid = params(channel.base_eps());
    let burst = match channel {
        RareChannel::Iid { .. } => None,
        RareChannel::Burst { eps_bad, .. } => {
            let q = occupancy;
            let qb = boosted_occupancy(q, twist.burst_boost);
            // State weights q/q' and (1−q)/(1−q'): exact 1.0 at B = 1.
            let (w_bad, w_good) = if qb == q {
                (1.0, 1.0)
            } else {
                (q / qb, (1.0 - q) / (1.0 - qb))
            };
            Some((params(eps_bad), qb, w_bad, w_good))
        }
    };
    // Trials run in BLOCK_WORDS-sized batches: all of a block's noise
    // draws happen first (the flip RNG is a separate stream from the data
    // RNG, so its per-stream order is unchanged), then one batch
    // encode/decode, then the tally records per trial in original order —
    // the float sums and telemetry stay byte-identical to the per-trial
    // loop.
    let mut patterns: Vec<u128> = Vec::with_capacity(BLOCK_WORDS);
    let mut weights: Vec<f64> = Vec::with_capacity(BLOCK_WORDS);
    let mut done = 0u64;
    while done < trials {
        let n = usize::try_from((trials - done).min(BLOCK_WORDS as u64)).expect("n <= 64");
        patterns.clear();
        weights.clear();
        for _ in 0..n {
            let ((eps_t, flip_w, keep_w), state_w) = match burst {
                None => (iid, 1.0),
                Some((bad, qb, w_bad, w_good)) => {
                    // One occupancy draw per word, mirroring the one
                    // transition draw per word of `GilbertElliott::corrupt`.
                    if flip_rng.gen::<f64>() < qb {
                        (bad, w_bad)
                    } else {
                        (iid, w_good)
                    }
                }
            };
            let mut w = state_w;
            let mut pattern = 0u128;
            for i in 0..wires {
                // Same draw shape as `BitFlipChannel::transmit`, so the
                // zero-twist pattern stream is the plain channel's.
                if flip_rng.gen::<f64>() < eps_t {
                    pattern |= 1u128 << i;
                    w *= flip_w;
                } else {
                    w *= keep_w;
                }
            }
            patterns.push(pattern);
            weights.push(w);
        }
        let fail_mask = stream.fails_with_patterns(&patterns);
        for (j, &w) in weights.iter().enumerate() {
            tally.record(w, fail_mask >> j & 1 == 1);
            done += 1;
            if tel.is_enabled() && (done.is_multiple_of(MC_PROGRESS_CHUNK) || done == trials) {
                let labels = [("scheme", scheme_name.as_str())];
                tel.event("mc.rare.progress", &labels, done);
                tel.gauge("mc.rare.rate", &labels, tally.rate());
            }
        }
    }
    if tel.is_enabled() && trials > 0 {
        let labels = [("scheme", scheme_name.as_str())];
        tel.counter("mc.rare.trials", &labels, tally.trials);
        tel.counter("mc.rare.failures", &labels, tally.failures);
        tel.gauge("mc.rare.mean_weight", &labels, tally.mean_weight());
    }
    tally
}

/// Importance-sampled word-error estimate of `scheme` at width `k`
/// through `channel`, sampling under `twist`, over `trials` words.
///
/// With `Twist::NONE` on an i.i.d. channel this reproduces
/// [`crate::montecarlo::word_error_rate`] byte for byte (same seeds,
/// same RNG streams, weights exactly 1).
#[must_use]
pub fn is_word_error(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    twist: Twist,
    trials: u64,
    seed: u64,
) -> WeightedTally {
    is_word_error_traced(scheme, k, channel, twist, trials, seed, &Telemetry::off())
}

/// [`is_word_error`] with `mc.rare.*` telemetry: an `mc.rare.progress`
/// event and `mc.rare.rate` gauge every [`MC_PROGRESS_CHUNK`] trials,
/// plus final `mc.rare.trials`/`mc.rare.failures` counters and the
/// `mc.rare.mean_weight` self-normalization gauge.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn is_word_error_traced(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    twist: Twist,
    trials: u64,
    seed: u64,
    tel: &Telemetry,
) -> WeightedTally {
    is_shard(
        scheme,
        k,
        channel,
        twist,
        channel.occupancy(trials),
        trials,
        seed,
        tel,
    )
}

/// [`is_word_error`] on the deterministic parallel engine: the run is
/// cut by [`mc_shards`] into a thread-count-independent shard list, each
/// shard sampled with its own split seed against the *whole-run* burst
/// occupancy, and the per-shard tallies merged in shard order via
/// [`WeightedTally::merged`] — byte-identical at any `threads >= 1`.
#[must_use]
pub fn is_word_error_parallel(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    twist: Twist,
    trials: u64,
    root_seed: u64,
    threads: usize,
) -> WeightedTally {
    is_word_error_parallel_traced(
        scheme,
        k,
        channel,
        twist,
        trials,
        root_seed,
        threads,
        &Telemetry::off(),
    )
}

/// [`is_word_error_parallel`] with merge-time telemetry: shards run
/// untraced, and one `mc.rare.progress` event plus
/// `mc.rare.trials`/`mc.rare.failures` counter increments are emitted
/// **per shard, at merge time, in shard order**; the final
/// `mc.rare.rate`, `mc.rare.ci95`, and `mc.rare.mean_weight` gauges are
/// set once — recording and estimate are thread-count invariant.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn is_word_error_parallel_traced(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    twist: Twist,
    trials: u64,
    root_seed: u64,
    threads: usize,
    tel: &Telemetry,
) -> WeightedTally {
    is_parallel_occ(
        scheme,
        k,
        channel,
        twist,
        channel.occupancy(trials),
        trials,
        root_seed,
        threads,
        tel,
    )
}

/// The occupancy-pinned core of [`is_word_error_parallel_traced`]:
/// callers that merge *multiple* parallel runs into one estimate (the
/// adaptive driver's geometric batches) must pin one burst occupancy
/// across every batch or the merged estimate would mix targets.
#[allow(clippy::too_many_arguments)]
pub(crate) fn is_parallel_occ(
    scheme: Scheme,
    k: usize,
    channel: RareChannel,
    twist: Twist,
    occupancy: f64,
    trials: u64,
    root_seed: u64,
    threads: usize,
    tel: &Telemetry,
) -> WeightedTally {
    let shards = mc_shards(trials, root_seed);
    let tallies = run_shards(threads, &shards, |_, &(shard_trials, seed)| {
        is_shard(
            scheme,
            k,
            channel,
            twist,
            occupancy,
            shard_trials,
            seed,
            &Telemetry::off(),
        )
    });
    if tel.is_enabled() {
        let scheme_name = scheme.name();
        let labels = [("scheme", scheme_name.as_str())];
        let mut done = 0u64;
        for shard in &tallies {
            done += shard.trials;
            tel.event("mc.rare.progress", &labels, done);
            tel.counter("mc.rare.trials", &labels, shard.trials);
            tel.counter("mc.rare.failures", &labels, shard.failures);
        }
        let merged = WeightedTally::merged(tallies.iter().copied());
        if merged.trials > 0 {
            tel.gauge("mc.rare.rate", &labels, merged.rate());
            tel.gauge("mc.rare.ci95", &labels, merged.confidence95());
            tel.gauge("mc.rare.mean_weight", &labels, merged.mean_weight());
        }
    }
    WeightedTally::merged(tallies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twisted_eps_zero_theta_is_bitwise_identity() {
        for eps in [0.0, 1e-12, 1e-3, 0.4999999, 0.5, 1.0] {
            assert_eq!(twisted_eps(eps, 0.0).to_bits(), eps.to_bits());
        }
    }

    #[test]
    fn twisted_eps_monotone_in_theta() {
        let eps = 1e-3;
        let mut last = 0.0;
        for theta in [0.0, 1.0, 2.0, 4.0, 8.0] {
            let t = twisted_eps(eps, theta);
            assert!(t >= last, "theta={theta}");
            assert!((0.0..=1.0).contains(&t));
            last = t;
        }
        // Large positive tilt pushes ε toward 1; negative toward 0.
        assert!(twisted_eps(eps, 12.0) > 0.99);
        assert!(twisted_eps(eps, -4.0) < eps);
    }

    #[test]
    fn boosted_occupancy_edges() {
        assert_eq!(boosted_occupancy(0.125, 1.0).to_bits(), 0.125f64.to_bits());
        assert!(boosted_occupancy(0.01, 50.0) > 0.3);
        assert_eq!(boosted_occupancy(0.0, 50.0), 0.0);
    }

    #[test]
    fn zero_twist_weights_are_exactly_one() {
        let t = is_word_error(
            Scheme::Hamming,
            8,
            RareChannel::Iid { eps: 0.01 },
            Twist::NONE,
            5_000,
            7,
        );
        assert_eq!(t.weighted_trials, 5_000.0);
        assert_eq!(t.mean_weight(), 1.0);
        assert_eq!(t.sum, t.failures as f64);
    }

    #[test]
    fn twisted_estimate_is_consistent_with_plain() {
        // ε high enough for plain MC to see failures: the twisted
        // estimate must agree within joint CIs.
        let (k, eps) = (8, 0.02);
        let ch = RareChannel::Iid { eps };
        let plain = is_word_error(Scheme::Hamming, k, ch, Twist::NONE, 200_000, 11);
        let twisted = is_word_error(Scheme::Hamming, k, ch, Twist::theta(1.5), 200_000, 13);
        let gap = (plain.rate() - twisted.rate()).abs();
        let tol = 3.0 * (plain.confidence95() + twisted.confidence95());
        assert!(
            gap < tol,
            "plain {} (±{}) vs twisted {} (±{})",
            plain.rate(),
            plain.confidence95(),
            twisted.rate(),
            twisted.confidence95()
        );
        // And the twist actually concentrates samples on failures.
        assert!(twisted.failures > 10 * plain.failures);
    }

    #[test]
    fn burst_occupancy_closed_form_matches_recurrence() {
        let ch = RareChannel::Burst {
            eps_good: 1e-4,
            eps_bad: 0.1,
            p_enter: 0.01,
            p_exit: 0.2,
        };
        for trials in [1u64, 2, 17, 1000] {
            let mut b = 0.0f64;
            let mut acc = 0.0;
            for _ in 0..trials {
                // Transition happens before each word (GilbertElliott).
                b = b * (1.0 - 0.2) + (1.0 - b) * 0.01;
                acc += b;
            }
            let expect = acc / trials as f64;
            let got = ch.occupancy(trials);
            assert!(
                (got - expect).abs() < 1e-12,
                "trials={trials}: {got} vs {expect}"
            );
        }
        assert_eq!(RareChannel::Iid { eps: 0.5 }.occupancy(100), 0.0);
    }

    #[test]
    fn parallel_matches_thread_counts() {
        let ch = RareChannel::Iid { eps: 1e-3 };
        let tw = Twist::theta(3.0);
        let one = is_word_error_parallel(Scheme::Dap, 8, ch, tw, 100_000, 5, 1);
        let eight = is_word_error_parallel(Scheme::Dap, 8, ch, tw, 100_000, 5, 8);
        assert_eq!(one, eight);
        assert!(one.failures > 0, "twist must reach the failure set");
    }
}
