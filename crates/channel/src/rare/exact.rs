//! The exhaustive-enumeration oracle: true word-error rates for small
//! buses, by summing channel probabilities over **all** error patterns.
//!
//! An unbiased-but-wrong importance sampler fails silently — its CI is
//! tight around the wrong number. The oracle is what makes it fail
//! loudly: for every scheme whose bus is narrow enough (`n ≤ 12` wires in
//! the vetted [`oracle_catalog`]), the failure set is enumerated exactly
//! and the estimators must statistically agree with the resulting rate.
//!
//! The key structural fact is that the i.i.d. channel's probability of an
//! error pattern depends only on its *weight*: `P(e) = ε^|e|·(1−ε)^(n−|e|)`.
//! So the oracle computes a [`FailureProfile`] — the average number of
//! failing patterns at each weight, averaged over **all** `2^k` data
//! words (eliminating data variance entirely) and over the decoder
//! phases of stateful schemes — once per `(scheme, k)`, ε-free; the true
//! WER at any ε is then a single binomial-weighted sum.

use super::RareChannel;
use socbus_codes::Scheme;
use socbus_model::Word;

/// Widest bus the oracle will enumerate: `2^k · 2^n · phases` decode
/// evaluations must stay tractable for a test suite.
pub const MAX_ORACLE_WIRES: usize = 16;

/// Warm-up/phase variants enumerated for stateful schemes (the BSC
/// decoder alternates between exactly two phases; the BI-family state is
/// failure-irrelevant, covered by the same two warm-up depths).
const STATEFUL_PHASES: u64 = 2;

/// The exact, ε-independent failure structure of one `(scheme, k)` cell.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureProfile {
    /// The enumerated scheme.
    pub scheme: Scheme,
    /// Data bits per transfer.
    pub data_bits: usize,
    /// Physical bus wires `n`.
    pub wires: usize,
    /// `fail_avg[w]` = number of weight-`w` error patterns that corrupt
    /// the decoded data, averaged over all `2^k` data words and all
    /// phases; `0 ≤ fail_avg[w] ≤ C(n, w)`.
    pub fail_avg: Vec<f64>,
    /// Total decode evaluations performed (cost accounting).
    pub evaluations: u64,
}

impl FailureProfile {
    /// The exact word-error rate at i.i.d. per-wire flip probability
    /// `eps`: `Σ_w fail_avg[w] · ε^w · (1−ε)^(n−w)`.
    #[must_use]
    pub fn wer(&self, eps: f64) -> f64 {
        let n = self.wires;
        let mut total = 0.0;
        for (w, &avg) in self.fail_avg.iter().enumerate() {
            if avg > 0.0 {
                let w_i32 = i32::try_from(w).expect("weight fits i32");
                let rest = i32::try_from(n - w).expect("weight fits i32");
                total += avg * eps.powi(w_i32) * (1.0 - eps).powi(rest);
            }
        }
        total
    }

    /// The exact word-error rate through `channel` averaged over a
    /// `trials`-word run: the i.i.d. case is [`FailureProfile::wer`];
    /// the Gilbert–Elliott case marginalizes the chain exactly via the
    /// closed-form average occupancy `q̄` —
    /// `q̄·wer(ε_bad) + (1−q̄)·wer(ε_good)` — the same `q̄` the
    /// importance sampler targets, so oracle and estimator describe the
    /// identical quantity, transient included.
    #[must_use]
    pub fn wer_channel(&self, channel: RareChannel, trials: u64) -> f64 {
        match channel {
            RareChannel::Iid { eps } => self.wer(eps),
            RareChannel::Burst {
                eps_good, eps_bad, ..
            } => {
                let q = channel.occupancy(trials);
                q * self.wer(eps_bad) + (1.0 - q) * self.wer(eps_good)
            }
        }
    }

    /// Total failing-pattern mass summed over all weights (diagnostic:
    /// `0` means the code corrects every enumerable pattern, which no
    /// finite-distance code does once `w > t`).
    #[must_use]
    pub fn failing_patterns(&self) -> f64 {
        self.fail_avg.iter().sum()
    }
}

/// Enumerates the exact [`FailureProfile`] of `scheme` at width `k`.
///
/// For each phase (stateful schemes get [`STATEFUL_PHASES`] warm-up
/// depths; stateless get one) and each of the `2^k` data words, a fresh
/// encoder/decoder pair is built, warmed up in lockstep, and the data
/// word encoded; then **every** `2^n` error pattern is XORed onto the
/// codeword and decoded against a [`clone`](socbus_codes::CloneBusCode)
/// of the warmed decoder — the clone is what lets a stateful decoder be
/// probed `2^n` times from the identical state.
///
/// # Panics
///
/// Panics if the bus is wider than [`MAX_ORACLE_WIRES`].
#[must_use]
pub fn failure_profile(scheme: Scheme, k: usize) -> FailureProfile {
    let probe = scheme.build(k);
    let n = probe.wires();
    let stateful = probe.is_stateful();
    assert!(
        n <= MAX_ORACLE_WIRES,
        "oracle is exponential in wires: {} has n={n} > {MAX_ORACLE_WIRES}",
        probe.name()
    );
    let phases = if stateful { STATEFUL_PHASES } else { 1 };
    let mut fail_counts = vec![0u64; n + 1];
    let mut evaluations = 0u64;
    let zero = Word::zero(k);
    for phase in 0..phases {
        for d_bits in 0..(1u128 << k) {
            let d = Word::from_bits(d_bits, k);
            let mut enc = scheme.build(k);
            let mut dec = scheme.build(k);
            for _ in 0..phase {
                // Advance both endpoints one clean transfer per phase
                // step — the BSC phase toggles on every transfer.
                let warm = enc.encode(zero);
                let _ = dec.decode(warm);
            }
            let sent = enc.encode(d);
            for e_bits in 0..(1u128 << n) {
                let received = sent.xor(Word::from_bits(e_bits, n));
                evaluations += 1;
                // Stateful decoders are probed on a clone so every
                // pattern sees the identical warmed state; stateless
                // decoders have no state to disturb.
                let failed = if stateful {
                    dec.clone().decode(received) != d
                } else {
                    dec.decode(received) != d
                };
                if failed {
                    fail_counts[e_bits.count_ones() as usize] += 1;
                }
            }
        }
    }
    let denom = phases as f64 * (1u128 << k) as f64;
    FailureProfile {
        scheme,
        data_bits: k,
        wires: n,
        fail_avg: fail_counts.iter().map(|&c| c as f64 / denom).collect(),
        evaluations,
    }
}

/// The vetted oracle catalog: one `(scheme, k)` cell per catalog scheme,
/// each chosen as the widest `k` keeping the bus at ≤ 12 wires — every
/// scheme in [`Scheme::catalog`] is represented except `BI(8)`, whose
/// 8 sub-buses need ≥ 8 data bits and therefore ≥ 16 wires.
#[must_use]
pub fn oracle_catalog() -> Vec<(Scheme, usize)> {
    vec![
        (Scheme::Uncoded, 8),      // n = 8
        (Scheme::BusInvert(1), 6), // n = 7
        (Scheme::Shielding, 5),    // n = 9
        (Scheme::Duplication, 5),  // n = 10
        (Scheme::Ftc, 6),          // n = 9
        (Scheme::Parity, 7),       // n = 8
        (Scheme::Hamming, 6),      // n = 10
        (Scheme::HammingX, 5),     // n = 11
        (Scheme::Bih, 4),          // n = 9
        (Scheme::FtcHc, 3),        // n = 10
        (Scheme::Bsc, 4),          // n = 9
        (Scheme::Dap, 4),          // n = 9
        (Scheme::Dapx, 4),         // n = 10
        (Scheme::Dapbi, 4),        // n = 11
        (Scheme::ExtHamming, 5),   // n = 10
        (Scheme::BchDec, 4),       // n = 12
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_model::noise;

    #[test]
    fn uncoded_profile_matches_closed_form() {
        // Uncoded fails iff any wire flips: every nonzero pattern fails,
        // for every data word — fail_avg[w] = C(n, w) for w >= 1.
        let p = failure_profile(Scheme::Uncoded, 4);
        assert_eq!(p.wires, 4);
        assert_eq!(p.fail_avg, vec![0.0, 4.0, 6.0, 4.0, 1.0]);
        for eps in [1e-1, 1e-3, 1e-6] {
            let expect = noise::word_error_uncoded_exact(4, eps);
            assert!(
                (p.wer(eps) - expect).abs() / expect < 1e-9,
                "eps={eps}: {} vs {expect}",
                p.wer(eps)
            );
        }
    }

    #[test]
    fn hamming_profile_matches_eq8_shape() {
        // Hamming(4) on 7 wires corrects all weight-1 patterns; weight-2
        // patterns all mis-correct (perfect code: every syndrome maps to
        // a correction, and a double error corrects the wrong wire).
        let p = failure_profile(Scheme::Hamming, 4);
        assert_eq!(p.wires, 7);
        assert_eq!(p.fail_avg[0], 0.0);
        assert_eq!(p.fail_avg[1], 0.0, "single errors must all correct");
        assert!(p.fail_avg[2] > 0.0);
        let expect = noise::word_error_hamming(4, 3, 1e-3);
        let got = p.wer(1e-3);
        // The analytic eq. (8) counts *decoder-visible* failures; the
        // oracle counts decoded-data corruption — a double error can
        // land the mis-correction on a parity wire and deliver clean
        // data, so oracle <= analytic, within the C(n,2) scale.
        assert!(got <= expect * 1.0001, "oracle {got} vs analytic {expect}");
        assert!(got > expect * 0.3);
    }

    #[test]
    fn dap_profile_matches_appendix_ii() {
        let p = failure_profile(Scheme::Dap, 4);
        assert_eq!(p.fail_avg[1], 0.0, "DAP corrects all single errors");
        let eps = 1e-3;
        let exact = noise::word_error_dap_exact(4, eps);
        let got = p.wer(eps);
        assert!(
            (got - exact).abs() / exact < 0.05,
            "oracle {got} vs eq14 {exact}"
        );
    }

    #[test]
    fn correctable_errors_contract_holds_in_profile() {
        // Every scheme's profile must show zero failing patterns at all
        // weights <= correctable_errors() — the decode contract, now
        // verified exhaustively rather than by sampling.
        for (scheme, k) in oracle_catalog() {
            let t = scheme.build(k).correctable_errors();
            let p = failure_profile(scheme, k);
            for w in 0..=t {
                assert_eq!(
                    p.fail_avg[w],
                    0.0,
                    "{} k={k}: weight-{w} pattern fails despite t={t}",
                    scheme.name()
                );
            }
            assert!(
                p.failing_patterns() > 0.0,
                "{} k={k}: no finite code corrects everything",
                scheme.name()
            );
        }
    }

    #[test]
    fn burst_wer_is_occupancy_mix() {
        let p = failure_profile(Scheme::Uncoded, 4);
        let ch = RareChannel::Burst {
            eps_good: 1e-4,
            eps_bad: 0.05,
            p_enter: 0.01,
            p_exit: 0.2,
        };
        let trials = 10_000;
        let q = ch.occupancy(trials);
        let expect = q * p.wer(0.05) + (1.0 - q) * p.wer(1e-4);
        assert_eq!(p.wer_channel(ch, trials), expect);
        assert_eq!(
            p.wer_channel(RareChannel::Iid { eps: 1e-3 }, trials),
            p.wer(1e-3)
        );
    }

    #[test]
    fn oracle_catalog_stays_enumerable() {
        for (scheme, k) in oracle_catalog() {
            let wires = scheme.build(k).wires();
            assert!(
                wires <= 12,
                "{} k={k}: n={wires} breaks the <= 12 wire pledge",
                scheme.name()
            );
        }
        // One cell per catalog scheme except BI(8).
        assert_eq!(oracle_catalog().len(), Scheme::catalog().len() - 1);
    }
}
