//! Composable DSM fault injection (beyond the paper's i.i.d. channel).
//!
//! The paper's analysis assumes a memoryless channel: every wire flips
//! independently with probability `ε = Q(Vdd/2σ)` (eq. (5)). Its §V,
//! however, motivates coding with noise sources that are anything but
//! memoryless — crosstalk (neighbor-dependent), supply droop (transient,
//! affects every wire for a window of cycles), and manufacturing or
//! wear-out defects (permanent, tied to one wire). This module models
//! those regimes as composable, seedable [`FaultModel`]s:
//!
//! * [`FaultSpec::Iid`] — the paper's baseline: each wire flips
//!   independently with probability ε every cycle;
//! * [`FaultSpec::Burst`] — a Gilbert–Elliott two-state Markov channel:
//!   a *good* state with low ε and a *bad* (burst) state with high ε,
//!   with per-cycle transition probabilities, modeling correlated noise
//!   events such as simultaneous-switching supply bounce;
//! * [`FaultSpec::StuckAt`] — a persistent hard fault pinning one wire
//!   to 0 or 1 (open/short defects, latent oxide breakdown);
//! * [`FaultSpec::Bridge`] — two neighboring wires shorted together,
//!   reading back the AND (ground-dominant) or OR (supply-dominant) of
//!   what was driven;
//! * [`FaultSpec::Droop`] — a transient voltage droop scaling ε up for a
//!   window of cycles (the DVS hazard studied by Kaul et al.).
//!
//! Every model is deterministic for a given seed; the reliability sweep
//! binary depends on byte-identical reruns. Models stack via
//! [`FaultInjector`], which owns the cycle counter so that transient
//! windows stay aligned with link retransmissions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_model::{q, q_inv, Word};
use socbus_telemetry::Telemetry;

/// What a shorted wire pair reads back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BridgeMode {
    /// Ground-dominant short: both wires read the AND of the driven pair.
    And,
    /// Supply-dominant short: both wires read the OR of the driven pair.
    Or,
}

/// A serializable description of one fault process.
///
/// Specs are plain data — `Clone`/`PartialEq`, no RNG state — so link and
/// path configurations stay cheap to copy; [`FaultSpec::build`] turns one
/// into a live, seeded [`FaultModel`].
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// Memoryless channel: every wire flips with probability `eps` each
    /// cycle (the paper's eq. (5) regime).
    Iid {
        /// Per-wire flip probability.
        eps: f64,
    },
    /// Gilbert–Elliott burst channel.
    Burst {
        /// Per-wire flip probability in the good state.
        eps_good: f64,
        /// Per-wire flip probability in the bad (burst) state.
        eps_bad: f64,
        /// Per-cycle probability of entering the bad state.
        p_enter: f64,
        /// Per-cycle probability of leaving the bad state.
        p_exit: f64,
    },
    /// Wire `wire` permanently reads `value`.
    StuckAt {
        /// Affected wire index.
        wire: usize,
        /// The value the wire is stuck at.
        value: bool,
    },
    /// Wires `wire` and `wire + 1` are shorted together.
    Bridge {
        /// Lower wire index of the shorted pair.
        wire: usize,
        /// Which logic value dominates the short.
        mode: BridgeMode,
    },
    /// i.i.d. flips at `eps`, scaled by `scale` during the droop window
    /// `[start, start + duration)` (in cycles).
    Droop {
        /// Baseline per-wire flip probability.
        eps: f64,
        /// Multiplier applied to ε inside the window.
        scale: f64,
        /// First cycle of the droop window.
        start: u64,
        /// Length of the droop window in cycles.
        duration: u64,
    },
}

impl FaultSpec {
    /// Instantiates the live model, deterministically seeded.
    #[must_use]
    pub fn build(&self, seed: u64) -> Box<dyn FaultModel> {
        match *self {
            FaultSpec::Iid { eps } => Box::new(IidFault::new(eps, seed)),
            FaultSpec::Burst {
                eps_good,
                eps_bad,
                p_enter,
                p_exit,
            } => Box::new(GilbertElliott::new(
                eps_good, eps_bad, p_enter, p_exit, seed,
            )),
            FaultSpec::StuckAt { wire, value } => Box::new(StuckAtFault::new(wire, value)),
            FaultSpec::Bridge { wire, mode } => Box::new(BridgeFault::new(wire, mode)),
            FaultSpec::Droop {
                eps,
                scale,
                start,
                duration,
            } => Box::new(DroopFault::new(eps, scale, start, duration, seed)),
        }
    }

    /// The stable family name used as the `fault_family` telemetry
    /// label: one of `iid`, `burst`, `stuck_at`, `bridge`, `droop`.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            FaultSpec::Iid { .. } => "iid",
            FaultSpec::Burst { .. } => "burst",
            FaultSpec::StuckAt { .. } => "stuck_at",
            FaultSpec::Bridge { .. } => "bridge",
            FaultSpec::Droop { .. } => "droop",
        }
    }

    /// Short human-readable label (used by reports and the sweep output).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            FaultSpec::Iid { eps } => format!("iid(eps={eps})"),
            FaultSpec::Burst {
                eps_good, eps_bad, ..
            } => format!("burst(good={eps_good},bad={eps_bad})"),
            FaultSpec::StuckAt { wire, value } => {
                format!("stuck-at-{}(wire={wire})", u8::from(value))
            }
            FaultSpec::Bridge { wire, mode } => format!(
                "bridge-{}(wires={wire},{})",
                match mode {
                    BridgeMode::And => "and",
                    BridgeMode::Or => "or",
                },
                wire + 1
            ),
            FaultSpec::Droop {
                eps,
                scale,
                start,
                duration,
            } => format!("droop(eps={eps},x{scale}@{start}+{duration})"),
        }
    }
}

/// Rescales a bit-error probability as if the wire swing were multiplied
/// by `factor`, through the eq. (5) relation `ε = Q(swing/2σ)`:
/// `ε' = Q(factor · Q⁻¹(ε))`. Degenerate ε (≤0 or ≥0.5) and degenerate
/// factors (≤0 or non-finite, which would otherwise launder a NaN into
/// every later corruption draw) pass ε through unchanged.
#[must_use]
pub fn rescale_eps(eps: f64, factor: f64) -> f64 {
    if eps <= 0.0 || eps >= 0.5 || !factor.is_finite() || factor <= 0.0 {
        return eps;
    }
    q(factor * q_inv(eps))
}

/// A fault process corrupting bus words cycle by cycle.
pub trait FaultModel {
    /// Short human-readable label.
    fn label(&self) -> String;

    /// Corrupts the word on the wires at the given cycle index.
    fn corrupt(&mut self, cycle: u64, word: Word) -> Word;

    /// Adjusts any ε-driven randomness as if the wire swing were
    /// multiplied by `factor` (> 1 lowers ε). Persistent hard faults are
    /// voltage-independent and ignore this — which is exactly why the
    /// degradation ladder needs scheme switching as well as swing steps.
    fn rescale_swing(&mut self, factor: f64) {
        let _ = factor;
    }

    /// Restores the model to its initial (post-seed) state.
    fn reset(&mut self) {}
}

/// The paper's memoryless channel as a [`FaultModel`].
#[derive(Clone, Debug)]
pub struct IidFault {
    eps: f64,
    seed: u64,
    rng: StdRng,
}

impl IidFault {
    /// i.i.d. flips with probability `eps`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= eps <= 1`.
    #[must_use]
    pub fn new(eps: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "eps out of range");
        IidFault {
            eps,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The current per-wire flip probability.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }
}

impl FaultModel for IidFault {
    fn label(&self) -> String {
        format!("iid(eps={})", self.eps)
    }

    fn corrupt(&mut self, _cycle: u64, word: Word) -> Word {
        let mut out = word;
        for i in 0..word.width() {
            if self.rng.gen::<f64>() < self.eps {
                out.set_bit(i, !out.bit(i));
            }
        }
        out
    }

    fn rescale_swing(&mut self, factor: f64) {
        self.eps = rescale_eps(self.eps, factor);
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Gilbert–Elliott two-state burst channel.
///
/// The state evolves once per cycle *before* the word is corrupted, so a
/// burst entered on cycle `c` already degrades cycle `c`.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    eps_good: f64,
    eps_bad: f64,
    p_enter: f64,
    p_exit: f64,
    in_burst: bool,
    seed: u64,
    rng: StdRng,
}

impl GilbertElliott {
    /// A burst channel starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics unless all probabilities are in `[0, 1]`.
    #[must_use]
    pub fn new(eps_good: f64, eps_bad: f64, p_enter: f64, p_exit: f64, seed: u64) -> Self {
        for p in [eps_good, eps_bad, p_enter, p_exit] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        GilbertElliott {
            eps_good,
            eps_bad,
            p_enter,
            p_exit,
            in_burst: false,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Stationary average per-wire flip probability.
    #[must_use]
    pub fn avg_eps(&self) -> f64 {
        if self.p_enter + self.p_exit == 0.0 {
            return self.eps_good;
        }
        let p_bad = self.p_enter / (self.p_enter + self.p_exit);
        p_bad * self.eps_bad + (1.0 - p_bad) * self.eps_good
    }

    /// Whether the channel is currently in the burst state.
    #[must_use]
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

impl FaultModel for GilbertElliott {
    fn label(&self) -> String {
        format!("burst(good={},bad={})", self.eps_good, self.eps_bad)
    }

    fn corrupt(&mut self, _cycle: u64, word: Word) -> Word {
        let flip = if self.in_burst {
            self.p_exit
        } else {
            self.p_enter
        };
        if self.rng.gen::<f64>() < flip {
            self.in_burst = !self.in_burst;
        }
        let eps = if self.in_burst {
            self.eps_bad
        } else {
            self.eps_good
        };
        let mut out = word;
        for i in 0..word.width() {
            if self.rng.gen::<f64>() < eps {
                out.set_bit(i, !out.bit(i));
            }
        }
        out
    }

    fn rescale_swing(&mut self, factor: f64) {
        self.eps_good = rescale_eps(self.eps_good, factor);
        self.eps_bad = rescale_eps(self.eps_bad, factor);
    }

    fn reset(&mut self) {
        self.in_burst = false;
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// A wire permanently stuck at 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StuckAtFault {
    wire: usize,
    value: bool,
}

impl StuckAtFault {
    /// Wire `wire` stuck at `value`.
    #[must_use]
    pub fn new(wire: usize, value: bool) -> Self {
        StuckAtFault { wire, value }
    }
}

impl FaultModel for StuckAtFault {
    fn label(&self) -> String {
        format!("stuck-at-{}(wire={})", u8::from(self.value), self.wire)
    }

    fn corrupt(&mut self, _cycle: u64, word: Word) -> Word {
        if self.wire < word.width() {
            word.with_bit(self.wire, self.value)
        } else {
            word
        }
    }
}

/// Two neighboring wires shorted together.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BridgeFault {
    wire: usize,
    mode: BridgeMode,
}

impl BridgeFault {
    /// Wires `wire` and `wire + 1` shorted, with the given dominance.
    #[must_use]
    pub fn new(wire: usize, mode: BridgeMode) -> Self {
        BridgeFault { wire, mode }
    }
}

impl FaultModel for BridgeFault {
    fn label(&self) -> String {
        FaultSpec::Bridge {
            wire: self.wire,
            mode: self.mode,
        }
        .label()
    }

    fn corrupt(&mut self, _cycle: u64, word: Word) -> Word {
        let (a, b) = (self.wire, self.wire + 1);
        if b >= word.width() {
            return word;
        }
        let merged = match self.mode {
            BridgeMode::And => word.bit(a) && word.bit(b),
            BridgeMode::Or => word.bit(a) || word.bit(b),
        };
        word.with_bit(a, merged).with_bit(b, merged)
    }
}

/// Transient voltage droop: ε multiplied by `scale` inside the window.
#[derive(Clone, Debug)]
pub struct DroopFault {
    eps: f64,
    scale: f64,
    start: u64,
    duration: u64,
    seed: u64,
    rng: StdRng,
}

impl DroopFault {
    /// i.i.d. flips at `eps`, at `eps * scale` during
    /// `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics unless `eps` and `eps * scale` are valid probabilities.
    #[must_use]
    pub fn new(eps: f64, scale: f64, start: u64, duration: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "eps out of range");
        assert!(
            scale >= 0.0 && eps * scale <= 1.0,
            "scaled eps out of range"
        );
        DroopFault {
            eps,
            scale,
            start,
            duration,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The effective ε at the given cycle.
    ///
    /// The droop window is half-open, `[start, start + duration)`: the
    /// scaled ε applies from `start` through `start + duration - 1`
    /// inclusive, and the cycle `start + duration` itself is already back
    /// at the nominal ε — the supply has recovered *by* that edge, not
    /// one cycle later. The subtraction form keeps the comparison exact
    /// even when `start + duration` would overflow `u64`.
    #[must_use]
    pub fn eps_at(&self, cycle: u64) -> f64 {
        if cycle >= self.start && cycle - self.start < self.duration {
            (self.eps * self.scale).min(1.0)
        } else {
            self.eps
        }
    }
}

impl FaultModel for DroopFault {
    fn label(&self) -> String {
        format!(
            "droop(eps={},x{}@{}+{})",
            self.eps, self.scale, self.start, self.duration
        )
    }

    fn corrupt(&mut self, cycle: u64, word: Word) -> Word {
        let eps = self.eps_at(cycle);
        let mut out = word;
        for i in 0..word.width() {
            if self.rng.gen::<f64>() < eps {
                out.set_bit(i, !out.bit(i));
            }
        }
        out
    }

    fn rescale_swing(&mut self, factor: f64) {
        self.eps = rescale_eps(self.eps, factor);
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Application-order class of a fault process; see
/// [`FaultInjector::transmit`] for the ordering contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum FaultClass {
    /// ε-driven random noise (i.i.d., burst, droop).
    Soft,
    /// Bridged wire pairs.
    Bridge,
    /// Stuck-at wires.
    Stuck,
}

impl FaultClass {
    fn of(spec: &FaultSpec) -> Self {
        match spec {
            FaultSpec::StuckAt { .. } => FaultClass::Stuck,
            FaultSpec::Bridge { .. } => FaultClass::Bridge,
            _ => FaultClass::Soft,
        }
    }
}

/// One fault process in the injector, with its activation state.
struct FaultSlot {
    model: Box<dyn FaultModel>,
    class: FaultClass,
    family: &'static str,
    enabled: bool,
    /// Corruptions batched locally while telemetry is enabled; flushed
    /// to the sink by [`FaultInjector::flush_telemetry`].
    corruptions: u64,
    /// Total bits flipped, batched alongside `corruptions`.
    flipped_bits: u64,
}

/// A stack of fault models applied in a fixed physical order, with a
/// shared event clock (the cycle counter), and per-slot activation so a
/// schedule can switch individual fault processes on and off mid-run.
///
/// # Ordering contract
///
/// [`FaultInjector::transmit`] applies fault processes in three passes,
/// in this order regardless of the order the specs were given in:
///
/// 1. **soft noise** (i.i.d., Gilbert–Elliott bursts, droop) — random
///    flips happen on the driven values;
/// 2. **bridge faults** — a short reads back the AND/OR of what the
///    (possibly noise-corrupted) drivers put on the shorted pair;
/// 3. **stuck-at faults** — a stuck wire reads its stuck value no matter
///    what the noise or a bridge did: on the same wire, *stuck-at wins
///    over bridge*, matching the physical dominance of a hard open/short
///    to rail over a resistive wire-to-wire defect.
///
/// Within a class, processes apply in the order their specs were pushed.
pub struct FaultInjector {
    slots: Vec<FaultSlot>,
    cycle: u64,
    tel: Telemetry,
}

impl FaultInjector {
    /// Builds the stack from specs; sub-model `i` is seeded with
    /// `seed` mixed with `i` so stacks are deterministic yet decorrelated.
    #[must_use]
    pub fn new(specs: &[FaultSpec], seed: u64) -> Self {
        let mut inj = FaultInjector {
            slots: Vec::with_capacity(specs.len()),
            cycle: 0,
            tel: Telemetry::off(),
        };
        for (i, spec) in specs.iter().enumerate() {
            let sub_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let _ = inj.push_spec(spec, sub_seed);
        }
        inj
    }

    /// Appends one more fault process (enabled), seeded with `seed`, and
    /// returns its slot index for later [`FaultInjector::set_enabled`]
    /// calls. The process joins its class's pass of the ordering
    /// contract, after any processes of the same class already present.
    pub fn push_spec(&mut self, spec: &FaultSpec, seed: u64) -> usize {
        self.slots.push(FaultSlot {
            model: spec.build(seed),
            class: FaultClass::of(spec),
            family: spec.family(),
            enabled: true,
            corruptions: 0,
            flipped_bits: 0,
        });
        self.slots.len() - 1
    }

    /// Attaches a telemetry handle. When enabled, [`FaultInjector::transmit`]
    /// batches per-family corruption counts locally (one branch plus two
    /// adds per corrupted word), and [`FaultInjector::flush_telemetry`]
    /// reports them as `fault.corruptions` / `fault.flipped_bits`; when
    /// disabled (the default), the hot loop is byte-for-byte the
    /// uninstrumented one.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Emits the locally batched corruption counters and resets the
    /// batch (safe to call repeatedly; each delta is reported once).
    pub fn flush_telemetry(&mut self) {
        if !self.tel.is_enabled() {
            return;
        }
        let tel = self.tel.clone();
        for s in &mut self.slots {
            if s.corruptions > 0 {
                let labels = [("fault_family", s.family)];
                tel.counter("fault.corruptions", &labels, s.corruptions);
                tel.counter("fault.flipped_bits", &labels, s.flipped_bits);
                s.corruptions = 0;
                s.flipped_bits = 0;
            }
        }
    }

    /// Enables or disables the fault process in `slot`. Disabled soft
    /// processes draw no randomness, so toggling is itself deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn set_enabled(&mut self, slot: usize, enabled: bool) {
        self.slots[slot].enabled = enabled;
    }

    /// Whether the fault process in `slot` is currently enabled.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn is_enabled(&self, slot: usize) -> bool {
        self.slots[slot].enabled
    }

    /// Number of fault-process slots (enabled or not).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Transmits one word through every enabled fault process and
    /// advances the event clock (retransmissions therefore consume droop
    /// cycles). See the type-level docs for the ordering contract.
    #[must_use]
    pub fn transmit(&mut self, word: Word) -> Word {
        let cycle = self.cycle;
        self.cycle += 1;
        let mut w = word;
        let watching = self.tel.is_enabled();
        for class in [FaultClass::Soft, FaultClass::Bridge, FaultClass::Stuck] {
            for s in &mut self.slots {
                if s.enabled && s.class == class {
                    let before = w;
                    w = s.model.corrupt(cycle, w);
                    if watching && w != before {
                        s.corruptions += 1;
                        s.flipped_bits += u64::from(before.hamming_distance(w));
                    }
                }
            }
        }
        w
    }

    /// The number of words transmitted so far — the event clock that
    /// cycle-window faults (droop) and fault schedules are aligned to.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Raises (factor > 1) or lowers the modeled swing on every ε-driven
    /// sub-model, enabled or not (the swing is a property of the bus, not
    /// of the schedule). Hard faults are unaffected.
    pub fn rescale_swing(&mut self, factor: f64) {
        for s in &mut self.slots {
            if s.class == FaultClass::Soft {
                s.model.rescale_swing(factor);
            }
        }
    }

    /// Rescales the modeled swing on a single slot — used when a fault
    /// process is pushed onto a bus that is already running away from
    /// the nominal swing (its ε spec is nominal-referenced, so it must
    /// be brought to the bus's current operating point). Hard-fault
    /// slots ignore this, like [`FaultInjector::rescale_swing`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn rescale_swing_slot(&mut self, slot: usize, factor: f64) {
        let s = &mut self.slots[slot];
        if s.class == FaultClass::Soft {
            s.model.rescale_swing(factor);
        }
    }

    /// Labels of the enabled sub-models, in application order.
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for class in [FaultClass::Soft, FaultClass::Bridge, FaultClass::Stuck] {
            for s in &self.slots {
                if s.enabled && s.class == class {
                    out.push(s.model.label());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_flips(specs: &[FaultSpec], width: usize, n: u64, seed: u64) -> u64 {
        let mut inj = FaultInjector::new(specs, seed);
        let w = Word::zero(width);
        (0..n)
            .map(|_| u64::from(inj.transmit(w).count_ones()))
            .sum()
    }

    #[test]
    fn iid_injector_matches_bitflip_rate() {
        let flips = count_flips(&[FaultSpec::Iid { eps: 0.05 }], 100, 2000, 3);
        let rate = flips as f64 / 200_000.0;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let specs = [
            FaultSpec::Burst {
                eps_good: 1e-3,
                eps_bad: 0.2,
                p_enter: 0.02,
                p_exit: 0.2,
            },
            FaultSpec::StuckAt {
                wire: 3,
                value: true,
            },
        ];
        let mut a = FaultInjector::new(&specs, 9);
        let mut b = FaultInjector::new(&specs, 9);
        let mut c = FaultInjector::new(&specs, 10);
        let w = Word::from_bits(0xA5A5, 16);
        let mut diverged = false;
        for _ in 0..500 {
            let (xa, xb, xc) = (a.transmit(w), b.transmit(w), c.transmit(w));
            assert_eq!(xa, xb, "same seed must reproduce");
            diverged |= xa != xc;
        }
        assert!(diverged, "different seeds should differ somewhere");
    }

    #[test]
    fn burst_channel_clusters_errors() {
        // Same average ε, bursty vs memoryless: the burst channel must
        // show a higher variance of per-word error counts.
        let ge = GilbertElliott::new(0.0, 0.25, 0.02, 0.2, 1);
        let avg = ge.avg_eps();
        let n = 20_000u64;
        let width = 16usize;
        let var = |spec: &[FaultSpec]| {
            let mut inj = FaultInjector::new(spec, 7);
            let w = Word::zero(width);
            let counts: Vec<f64> = (0..n)
                .map(|_| f64::from(inj.transmit(w).count_ones()))
                .collect();
            let mean = counts.iter().sum::<f64>() / n as f64;
            let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n as f64;
            (mean, var)
        };
        let (mean_b, var_b) = var(&[FaultSpec::Burst {
            eps_good: 0.0,
            eps_bad: 0.25,
            p_enter: 0.02,
            p_exit: 0.2,
        }]);
        let (mean_i, var_i) = var(&[FaultSpec::Iid { eps: avg }]);
        assert!(
            (mean_b - mean_i).abs() / mean_i < 0.25,
            "avg rates comparable: {mean_b} vs {mean_i}"
        );
        assert!(
            var_b > 2.0 * var_i,
            "burstiness: var {var_b} vs iid {var_i}"
        );
    }

    #[test]
    fn stuck_at_pins_exactly_one_wire() {
        let mut inj = FaultInjector::new(
            &[FaultSpec::StuckAt {
                wire: 2,
                value: false,
            }],
            0,
        );
        for bits in [0b1111u128, 0b0100, 0b1011, 0b0000] {
            let out = inj.transmit(Word::from_bits(bits, 4));
            assert!(!out.bit(2));
            for i in [0usize, 1, 3] {
                assert_eq!(out.bit(i), (bits >> i) & 1 == 1);
            }
        }
    }

    #[test]
    fn bridge_merges_neighbors() {
        let mut or = FaultInjector::new(
            &[FaultSpec::Bridge {
                wire: 1,
                mode: BridgeMode::Or,
            }],
            0,
        );
        let out = or.transmit(Word::from_bits(0b0010, 4));
        assert!(out.bit(1) && out.bit(2), "or-short raises both");
        let mut and = FaultInjector::new(
            &[FaultSpec::Bridge {
                wire: 1,
                mode: BridgeMode::And,
            }],
            0,
        );
        let out = and.transmit(Word::from_bits(0b0010, 4));
        assert!(!out.bit(1) && !out.bit(2), "and-short grounds both");
        // Agreeing neighbors pass through unchanged.
        let mut or2 = FaultInjector::new(
            &[FaultSpec::Bridge {
                wire: 0,
                mode: BridgeMode::Or,
            }],
            0,
        );
        assert_eq!(
            or2.transmit(Word::from_bits(0b11, 2)),
            Word::from_bits(0b11, 2)
        );
    }

    #[test]
    fn droop_raises_error_rate_only_in_window() {
        let spec = [FaultSpec::Droop {
            eps: 1e-3,
            scale: 100.0,
            start: 1000,
            duration: 1000,
        }];
        let mut inj = FaultInjector::new(&spec, 11);
        let w = Word::zero(64);
        let mut before = 0u64;
        let mut during = 0u64;
        let mut after = 0u64;
        for c in 0..3000u64 {
            let flips = u64::from(inj.transmit(w).count_ones());
            match c {
                0..=999 => before += flips,
                1000..=1999 => during += flips,
                _ => after += flips,
            }
        }
        assert!(
            during > 20 * (before + after + 1),
            "window {during} vs outside {before}+{after}"
        );
    }

    #[test]
    fn rescale_swing_lowers_soft_eps_but_not_hard_faults() {
        let mut inj = FaultInjector::new(
            &[
                FaultSpec::Iid { eps: 1e-2 },
                FaultSpec::StuckAt {
                    wire: 0,
                    value: true,
                },
            ],
            5,
        );
        inj.rescale_swing(1.4);
        let w = Word::zero(64);
        let flips: u64 = (0..2000)
            .map(|_| u64::from(inj.transmit(w).count_ones()))
            .sum();
        // 64 wires * 2000 cycles: wire 0 always flips (stuck at 1), the
        // soft rate drops well below 1e-2.
        let soft_flips = flips - 2000;
        let rate = soft_flips as f64 / (63.0 * 2000.0);
        let expect = rescale_eps(1e-2, 1.4);
        assert!(rate < 5e-3, "soft rate {rate}");
        assert!(
            (rate - expect).abs() / expect < 0.5,
            "rate {rate} vs {expect}"
        );
    }

    /// Satellite (degenerate operating points): a NaN/Inf or
    /// non-positive swing factor must pass ε through unchanged instead
    /// of poisoning every later corruption draw.
    #[test]
    fn degenerate_swing_factors_leave_eps_untouched() {
        assert_eq!(rescale_eps(1e-3, f64::NAN), 1e-3);
        assert_eq!(rescale_eps(1e-3, f64::INFINITY), 1e-3);
        assert_eq!(rescale_eps(1e-3, f64::NEG_INFINITY), 1e-3);
        assert_eq!(rescale_eps(1e-3, 0.0), 1e-3);
        assert_eq!(rescale_eps(1e-3, -2.0), 1e-3);
        // Degenerate ε still passes through under a sane factor.
        assert_eq!(rescale_eps(0.0, 1.3), 0.0);
        assert_eq!(rescale_eps(0.7, 1.3), 0.7);
        // And the sane path stays sane.
        let scaled = rescale_eps(1e-3, 1.3);
        assert!(scaled.is_finite() && scaled > 0.0 && scaled < 1e-3);
    }

    /// A slot pushed onto an already-rescaled bus is brought to the
    /// bus's swing via [`FaultInjector::rescale_swing_slot`] — and only
    /// that slot moves; hard-fault slots ignore it.
    #[test]
    fn rescale_swing_slot_touches_only_the_named_soft_slot() {
        let mut whole = FaultInjector::new(&[FaultSpec::Iid { eps: 1e-2 }], 5);
        whole.rescale_swing(1.4);
        let late = whole.push_spec(&FaultSpec::Iid { eps: 1e-2 }, 77);
        whole.rescale_swing_slot(late, 1.4);
        let mut fresh = FaultInjector::new(&[FaultSpec::Iid { eps: 1e-2 }], 5);
        fresh.rescale_swing(1.4);
        let l2 = fresh.push_spec(&FaultSpec::Iid { eps: 1e-2 }, 77);
        // Same state either way: both slots sit at the 1.4-swing ε...
        let w = Word::zero(64);
        let a: u64 = (0..2000)
            .map(|_| u64::from(whole.transmit(w).count_ones()))
            .sum();
        // ...whereas the un-rescaled late slot flips at the nominal rate.
        let b: u64 = (0..2000)
            .map(|_| u64::from(fresh.transmit(w).count_ones()))
            .sum();
        assert!(
            b > a + a / 2,
            "nominal-ε late slot must out-flip the rescaled one: {b} vs {a}"
        );
        // Hard slots ignore the per-slot rescale (no panic, no change).
        let stuck = whole.push_spec(
            &FaultSpec::StuckAt {
                wire: 0,
                value: true,
            },
            3,
        );
        whole.rescale_swing_slot(stuck, 1.4);
        assert!(whole.transmit(Word::zero(64)).bit(0));
        let _ = l2;
    }

    /// Droop boundary (ISSUE 2 satellite): the window is `[start,
    /// start + duration)` — the last droop cycle is `start+duration-1`
    /// and the nominal ε is restored exactly at `start+duration`, not one
    /// cycle late.
    #[test]
    fn droop_window_boundary_is_half_open() {
        let d = DroopFault::new(1e-3, 50.0, 1000, 100, 1);
        let scaled = 1e-3 * 50.0;
        assert_eq!(d.eps_at(999), 1e-3, "cycle before the window is nominal");
        assert_eq!(d.eps_at(1000), scaled, "window opens at start");
        assert_eq!(d.eps_at(1099), scaled, "last window cycle still drooped");
        assert_eq!(
            d.eps_at(1100),
            1e-3,
            "cycle start+duration must already be nominal"
        );
        // Degenerate and overflow-adjacent shapes.
        let empty = DroopFault::new(1e-3, 50.0, 7, 0, 1);
        assert_eq!(empty.eps_at(7), 1e-3, "zero-length window never droops");
        let late = DroopFault::new(1e-3, 50.0, u64::MAX - 2, 10, 1);
        assert_eq!(late.eps_at(u64::MAX - 3), 1e-3);
        assert_eq!(
            late.eps_at(u64::MAX),
            scaled,
            "window straddling u64::MAX must not overflow"
        );
    }

    /// Ordering contract (ISSUE 2 satellite): stuck-at wins over bridge
    /// on the same wire, regardless of the order the specs were given in.
    #[test]
    fn stuck_at_wins_over_bridge_on_same_wire() {
        let stuck = FaultSpec::StuckAt {
            wire: 1,
            value: false,
        };
        let bridge = FaultSpec::Bridge {
            wire: 1,
            mode: BridgeMode::Or,
        };
        for specs in [
            [stuck.clone(), bridge.clone()],
            [bridge.clone(), stuck.clone()],
        ] {
            let mut inj = FaultInjector::new(&specs, 0);
            // Driven 0b0100: the or-bridge over wires 1,2 raises wire 1,
            // then the stuck-at-0 pins it back low. Wire 2 keeps the
            // bridged value.
            let out = inj.transmit(Word::from_bits(0b0100, 4));
            assert!(!out.bit(1), "stuck-at-0 must win on wire 1: {out:?}");
            assert!(out.bit(2), "bridge still drives the partner wire");
        }
    }

    /// Soft noise is applied before hard faults: a stuck wire reads its
    /// stuck value even when the noise process flips it every cycle.
    #[test]
    fn hard_faults_apply_after_soft_noise() {
        let specs = [
            FaultSpec::Iid { eps: 1.0 },
            FaultSpec::StuckAt {
                wire: 3,
                value: true,
            },
        ];
        let mut inj = FaultInjector::new(&specs, 4);
        for _ in 0..50 {
            assert!(inj.transmit(Word::zero(8)).bit(3));
        }
    }

    #[test]
    fn slots_toggle_without_disturbing_the_event_clock() {
        let specs = [
            FaultSpec::StuckAt {
                wire: 0,
                value: true,
            },
            FaultSpec::Droop {
                eps: 0.0,
                scale: 1.0,
                start: 0,
                duration: u64::MAX,
            },
        ];
        let mut inj = FaultInjector::new(&specs, 0);
        assert_eq!(inj.slot_count(), 2);
        assert!(inj.is_enabled(0));
        let w = Word::zero(4);
        assert!(inj.transmit(w).bit(0), "enabled stuck-at fires");
        inj.set_enabled(0, false);
        assert!(!inj.transmit(w).bit(0), "disabled stuck-at is transparent");
        inj.set_enabled(0, true);
        assert!(inj.transmit(w).bit(0), "re-enabled stuck-at fires again");
        assert_eq!(inj.cycles(), 3, "the event clock ticks regardless");
        // A dynamically pushed slot participates like a built-in one.
        let slot = inj.push_spec(
            &FaultSpec::StuckAt {
                wire: 1,
                value: true,
            },
            9,
        );
        assert_eq!(slot, 2);
        assert!(inj.transmit(w).bit(1));
        inj.set_enabled(slot, false);
        assert!(!inj.transmit(w).bit(1));
        assert_eq!(inj.labels().len(), 2, "labels list enabled slots only");
    }

    /// Telemetry: corruption counters are keyed by fault family and
    /// count flipped bits; attaching a sink never changes the words.
    #[test]
    fn telemetry_counts_corruptions_per_family() {
        use std::rc::Rc;
        let specs = [
            FaultSpec::Iid { eps: 1.0 },
            FaultSpec::StuckAt {
                wire: 0,
                value: true,
            },
        ];
        let mut plain = FaultInjector::new(&specs, 21);
        let mut traced = FaultInjector::new(&specs, 21);
        let recorder = Rc::new(socbus_telemetry::Recorder::new());
        traced.set_telemetry(Telemetry::from_recorder(&recorder));
        let w = Word::zero(8);
        for _ in 0..10 {
            assert_eq!(plain.transmit(w), traced.transmit(w), "words unchanged");
        }
        let iid = [("fault_family", "iid")];
        let stuck = [("fault_family", "stuck_at")];
        assert_eq!(
            recorder.counter_value("fault.corruptions", &iid),
            0,
            "counters are batched until flushed"
        );
        traced.flush_telemetry();
        traced.flush_telemetry(); // idempotent: deltas report once
        assert_eq!(
            recorder.counter_value("fault.corruptions", &iid),
            10,
            "eps=1.0 corrupts every word"
        );
        assert_eq!(
            recorder.counter_value("fault.flipped_bits", &iid),
            80,
            "eps=1.0 flips all 8 wires every cycle"
        );
        // iid flips wire 0 to 1, so the stuck-at-1 pass sees it already
        // high and changes nothing — no stuck_at corruption counted.
        assert_eq!(recorder.counter_value("fault.corruptions", &stuck), 0);
    }

    #[test]
    fn rescale_eps_follows_q_relation() {
        let eps = 1e-3;
        let up = rescale_eps(eps, 1.2);
        let down = rescale_eps(eps, 0.8);
        assert!(up < eps && down > eps);
        // Round trip through q_inv/q.
        let back = rescale_eps(up, 1.0 / 1.2);
        assert!((back - eps).abs() / eps < 1e-9, "back {back}");
        // Degenerate inputs pass through.
        assert_eq!(rescale_eps(0.0, 2.0), 0.0);
        assert_eq!(rescale_eps(0.6, 2.0), 0.6);
    }
}
