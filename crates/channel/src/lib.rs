//! # socbus-channel — DSM noise, reliability measurement, voltage scaling
//!
//! The paper treats the bus as a *noisy channel*: additive Gaussian noise
//! gives each wire a bit-error probability `ε = Q(Vdd/2σ)` (eq. (5)), and
//! error-control coding converts redundancy into either reliability or —
//! via low-swing signaling — energy savings (eq. (11)).
//!
//! * [`awgn`] — Gaussian and i.i.d. bit-flip channel models;
//! * [`fault`] — composable seeded fault injection beyond the i.i.d.
//!   assumption: Gilbert–Elliott bursts, stuck-at and bridged wires, and
//!   transient voltage droop;
//! * [`montecarlo`] — residual word-error measurement through real
//!   codecs, validating eqs. (7)–(9) and Appendix II;
//! * [`rare`] — rare-event estimation (importance sampling, multilevel
//!   splitting, exhaustive-enumeration oracle) reaching the WER ≤ 1e-12
//!   regime plain Monte-Carlo cannot;
//! * [`scaling`] — the eq. (11) voltage-scaling solver behind the
//!   paper's Table III `V̂dd` column.
//!
//! # Example
//!
//! ```
//! use socbus_channel::scaling::{scale_voltage, ResidualModel};
//!
//! // A 32-bit Hamming bus can run below the nominal 1.2 V while meeting
//! // the same 1e-20 word-error target as the uncoded bus.
//! let d = scale_voltage(ResidualModel::DoubleError { wires: 38 }, 32, 1e-20, 1.2);
//! assert!(d.scaled_vdd < 1.0);
//! assert!(d.energy_scale() < 0.7);
//! ```

pub mod awgn;
pub mod fault;
pub mod montecarlo;
pub mod rare;
pub mod scaling;

pub use awgn::{BitFlipChannel, GaussianChannel};
pub use fault::{
    rescale_eps, BridgeFault, BridgeMode, DroopFault, FaultInjector, FaultModel, FaultSpec,
    GilbertElliott, IidFault, StuckAtFault,
};
pub use montecarlo::{
    mc_shards, word_error_rate, word_error_rate_parallel, word_error_rate_parallel_traced,
    word_error_rate_traced, WeightedTally, WordErrorEstimate,
};
pub use rare::{RareChannel, Twist};
pub use scaling::{scale_voltage, try_scale_voltage, ResidualModel, ScaledDesign, ScalingError};
