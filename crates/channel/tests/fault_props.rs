//! Property tests for the fault-injection layer (ISSUE 2 satellite).

use proptest::prelude::*;
use socbus_channel::{FaultModel, GilbertElliott};
use socbus_model::Word;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `GilbertElliott::avg_eps` is the stationary per-wire flip
    /// probability `p_bad·ε_bad + (1−p_bad)·ε_good` with
    /// `p_bad = p_enter/(p_enter+p_exit)`; a long simulated run must
    /// empirically match it. The run length is chosen so the chain mixes
    /// through hundreds of burst episodes, and the tolerance budgets the
    /// burst-correlated variance (the effective sample count is the
    /// number of independent burst episodes, not the cycle count).
    #[test]
    fn avg_eps_matches_empirical_rate(
        eps_good in 0.0f64..0.02,
        eps_bad in 0.05f64..0.3,
        p_enter in 0.02f64..0.3,
        p_exit in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        const WIDTH: usize = 16;
        const CYCLES: u64 = 100_000;
        let mut ge = GilbertElliott::new(eps_good, eps_bad, p_enter, p_exit, seed);
        let avg = ge.avg_eps();
        let w = Word::zero(WIDTH);
        let mut flips = 0u64;
        for cycle in 0..CYCLES {
            flips += u64::from(ge.corrupt(cycle, w).count_ones());
        }
        let rate = flips as f64 / (CYCLES as f64 * WIDTH as f64);
        let tolerance = 0.3 * avg + 2e-3;
        prop_assert!(
            (rate - avg).abs() < tolerance,
            "empirical {rate:.5} vs stationary {avg:.5} (tolerance {tolerance:.5})"
        );
    }
}
