//! Rare-event estimator verification suite (ISSUE 9 satellites).
//!
//! An unbiased-but-wrong importance sampler fails *silently*: its CI is
//! tight around the wrong number and every downstream voltage-scaling
//! decision inherits the error. This suite is what makes it fail
//! loudly, in three layers:
//!
//! 1. **Oracle cross-checks** — for every catalog scheme narrow enough
//!    to enumerate (`rare::exact::oracle_catalog`, all wires ≤ 12), the
//!    adaptively-driven IS estimate and the multilevel-splitting
//!    estimate must be statistically consistent with the *exact* WER
//!    from exhaustive pattern enumeration.
//! 2. **Coverage** — the claimed 95% CI must actually cover: across 100
//!    independent estimator runs, the empirical coverage of the exact
//!    rate is ≥ 90% (proptest over scheme, ε, and seed; the vendored
//!    proptest is deterministic per test name, so green stays green).
//! 3. **Exact degenerations** — zero twist reproduces the plain
//!    Monte-Carlo estimator byte for byte, a level-free splitting
//!    schedule is plain MC, weights self-normalize to 1, and every
//!    estimator is byte-identical at any thread count, traced included.

use proptest::prelude::*;
use socbus_channel::montecarlo::{word_error_rate, word_error_rate_parallel};
use socbus_channel::rare::{
    certify, failure_profile, is_word_error, is_word_error_parallel, is_word_error_parallel_traced,
    oracle_catalog, plan, split_word_error, split_word_error_parallel,
    split_word_error_parallel_traced, Method, RareChannel, SplitConfig, Twist,
};
use socbus_codes::Scheme;
use socbus_exec::shard_seed;
use socbus_telemetry::{Recorder, Telemetry};
use std::rc::Rc;

/// The headline oracle cross-check: for every enumerable catalog scheme
/// and ε ∈ {1e-1, 1e-2, 1e-3}, the pilot-planned, relative-error-driven
/// IS estimate must land within 2 CI half-widths of the exhaustive
/// truth (97.7% two-sided per cell; all seeds fixed, so this is a
/// regression pin, not a coin flip).
#[test]
fn oracle_cross_check_importance_sampling_covers_exact() {
    for (scheme, k) in oracle_catalog() {
        let profile = failure_profile(scheme, k);
        for (i, eps) in [1e-1, 1e-2, 1e-3].into_iter().enumerate() {
            let exact = profile.wer(eps);
            assert!(
                exact > 0.0,
                "{} k={k}: exact WER 0 at eps={eps}",
                scheme.name()
            );
            let cert = certify(
                scheme,
                k,
                RareChannel::Iid { eps },
                0.3,
                400_000,
                1000 + i as u64,
                2,
            );
            assert!(
                cert.rate > 0.0,
                "{} k={k} eps={eps}: estimator never reached the failure set",
                scheme.name()
            );
            let gap = (cert.rate - exact).abs();
            assert!(
                gap <= 2.0 * cert.ci95,
                "{} k={k} eps={eps}: estimate {} (±{}) vs exact {exact} — gap {gap}",
                scheme.name(),
                cert.rate,
                cert.ci95
            );
        }
    }
}

/// Splitting consistency: the weight-cascade estimator agrees with the
/// oracle on a correcting-scheme sample (where its level schedule is
/// nontrivial), within 3 replica-CI half-widths.
#[test]
fn oracle_cross_check_splitting_covers_exact() {
    for (scheme, k) in [(Scheme::Dap, 4), (Scheme::Hamming, 6), (Scheme::BchDec, 4)] {
        let exact = failure_profile(scheme, k).wer(1e-3);
        let config = SplitConfig::for_scheme(scheme, k, 4_096, 16);
        let est =
            split_word_error_parallel(scheme, k, RareChannel::Iid { eps: 1e-3 }, &config, 42, 2);
        assert!(
            est.failures > 0,
            "{}: cascade never reached the failure set",
            scheme.name()
        );
        let gap = (est.rate() - exact).abs();
        assert!(
            gap <= 3.0 * est.confidence95(),
            "{} k={k}: split {} (±{}) vs exact {exact}",
            scheme.name(),
            est.rate(),
            est.confidence95()
        );
    }
}

/// The burst channel's estimator and oracle target the *same* quantity
/// (chain-average WER over the run, transient included): cross-check
/// through the Gilbert–Elliott marginalization path.
#[test]
fn oracle_cross_check_burst_channel() {
    let (scheme, k) = (Scheme::Dap, 4);
    let ch = RareChannel::Burst {
        eps_good: 1e-4,
        eps_bad: 2e-2,
        p_enter: 0.02,
        p_exit: 0.3,
    };
    let trials = 400_000u64;
    let exact = failure_profile(scheme, k).wer_channel(ch, trials);
    let tally = is_word_error_parallel(
        scheme,
        k,
        ch,
        Twist {
            theta: 2.0,
            burst_boost: 10.0,
        },
        trials,
        9,
        2,
    );
    assert!(tally.failures > 0);
    let gap = (tally.rate() - exact).abs();
    assert!(
        gap <= 2.0 * tally.confidence95(),
        "burst: {} (±{}) vs exact {exact}",
        tally.rate(),
        tally.confidence95()
    );
}

/// ISSUE 9 satellite: likelihood-ratio weights are self-normalizing —
/// under the twisted measure `E[w] = 1` exactly, so the mean weight
/// over a long run must concentrate near 1 even at an aggressive tilt.
#[test]
fn likelihood_ratio_weights_sum_to_one_under_nominal() {
    for theta in [0.0, 1.5, 3.0] {
        let tally = is_word_error(
            Scheme::Hamming,
            8,
            RareChannel::Iid { eps: 5e-3 },
            Twist::theta(theta),
            200_000,
            5,
        );
        let mw = tally.mean_weight();
        assert!(
            (mw - 1.0).abs() < 0.05,
            "theta={theta}: mean weight {mw} drifted from 1"
        );
        assert!((tally.weighted_trials - tally.trials as f64).abs() < 0.05 * tally.trials as f64);
    }
}

/// ISSUE 9 satellite: zero-twist IS **is** the plain estimator — same
/// RNG streams, same failure stream, weights exactly 1 — byte for byte,
/// in both the single-stream and sharded forms.
#[test]
fn zero_twist_reproduces_plain_estimator_byte_for_byte() {
    let (scheme, k, eps, seed) = (Scheme::Dap, 8, 5e-3, 41);
    let trials = 70_000u64;
    let plain = word_error_rate(scheme, k, eps, trials, seed);
    let is = is_word_error(
        scheme,
        k,
        RareChannel::Iid { eps },
        Twist::NONE,
        trials,
        seed,
    );
    assert_eq!(is, plain.weighted(), "single-stream zero-twist diverged");
    assert_eq!(
        is.rate().to_bits(),
        plain.rate.to_bits(),
        "rate bit-identical"
    );
    let plain_par = word_error_rate_parallel(scheme, k, eps, trials, seed, 4);
    let is_par = is_word_error_parallel(
        scheme,
        k,
        RareChannel::Iid { eps },
        Twist::NONE,
        trials,
        seed,
        4,
    );
    assert_eq!(is_par, plain_par.weighted(), "sharded zero-twist diverged");
}

/// ISSUE 9 satellite: splitting with a trivial (level-free) schedule
/// degrades to plain Monte-Carlo exactly — the replica at shard seed 0
/// replays the plain estimator's streams.
#[test]
fn trivial_splitting_schedule_is_plain_monte_carlo() {
    let (scheme, k, eps, seed) = (Scheme::Hamming, 8, 1e-2, 23);
    let config = SplitConfig::direct(30_000, 1);
    let split = split_word_error(scheme, k, RareChannel::Iid { eps }, &config, seed);
    let plain = word_error_rate(scheme, k, eps, 30_000, shard_seed(seed, 0));
    assert_eq!(split.failures, plain.failures);
    assert_eq!(split.rate().to_bits(), plain.rate.to_bits());
    // And zero-valued levels are the same trivial schedule.
    let zeroed = SplitConfig::new(vec![0], 30_000, 1);
    let split0 = split_word_error(scheme, k, RareChannel::Iid { eps }, &zeroed, seed);
    assert_eq!(split0, split);
}

/// The pilot planner is deterministic and picks a failure-reaching
/// method for every oracle cell at ε = 1e-3 (where plain MC at pilot
/// effort often sees nothing).
#[test]
fn planner_always_returns_a_viable_method() {
    for (scheme, k) in oracle_catalog() {
        let p = plan(scheme, k, RareChannel::Iid { eps: 1e-3 }, 77);
        let p2 = plan(scheme, k, RareChannel::Iid { eps: 1e-3 }, 77);
        assert_eq!(p, p2, "{}: plan must be deterministic", scheme.name());
        if let Method::Twist(t) = &p.method {
            assert!(
                p.pilot_rate > 0.0,
                "{}: twist {t:?} chosen without evidence",
                scheme.name()
            );
        }
    }
}

/// ISSUE 9 satellite (determinism, untraced): every rare estimator is
/// byte-identical at `--threads 1` vs `--threads 8`.
#[test]
fn estimators_are_thread_count_invariant_untraced() {
    let ch = RareChannel::Iid { eps: 1e-3 };
    let tw = Twist::theta(3.0);
    let is1 = is_word_error_parallel(Scheme::Dapbi, 4, ch, tw, 150_000, 3, 1);
    let is8 = is_word_error_parallel(Scheme::Dapbi, 4, ch, tw, 150_000, 3, 8);
    assert_eq!(is1, is8, "IS estimator diverged across thread counts");
    let config = SplitConfig::for_scheme(Scheme::Dap, 8, 2_048, 8);
    let sp1 = split_word_error_parallel(Scheme::Dap, 8, ch, &config, 3, 1);
    let sp8 = split_word_error_parallel(Scheme::Dap, 8, ch, &config, 3, 8);
    assert_eq!(sp1, sp8, "splitting diverged across thread counts");
    let c1 = certify(Scheme::Hamming, 8, ch, 0.3, 300_000, 3, 1);
    let c8 = certify(Scheme::Hamming, 8, ch, 0.3, 300_000, 3, 8);
    assert_eq!(c1, c8, "certify diverged across thread counts");
}

/// ISSUE 9 satellite (determinism, traced): the traced estimators emit
/// merge-time telemetry in shard order, so the *entire recording* —
/// exported JSONL, byte for byte — is thread-count invariant too.
#[test]
fn estimators_are_thread_count_invariant_traced() {
    let run_is = |threads: usize| {
        let rec = Rc::new(Recorder::new());
        let tel = Telemetry::from_recorder(&rec);
        let tally = is_word_error_parallel_traced(
            Scheme::Dap,
            8,
            RareChannel::Iid { eps: 1e-3 },
            Twist::theta(3.0),
            150_000,
            7,
            threads,
            &tel,
        );
        (tally, rec.export_jsonl())
    };
    let (t1, j1) = run_is(1);
    let (t8, j8) = run_is(8);
    assert_eq!(t1, t8);
    assert_eq!(j1, j8, "traced IS telemetry diverged across thread counts");
    assert!(j1.contains("mc.rare.progress"), "rare telemetry missing");
    let run_split = |threads: usize| {
        let rec = Rc::new(Recorder::new());
        let tel = Telemetry::from_recorder(&rec);
        let config = SplitConfig::for_scheme(Scheme::Dap, 8, 2_048, 8);
        let est = split_word_error_parallel_traced(
            Scheme::Dap,
            8,
            RareChannel::Iid { eps: 1e-3 },
            &config,
            7,
            threads,
            &tel,
        );
        (est, rec.export_jsonl())
    };
    let (s1, k1) = run_split(1);
    let (s8, k8) = run_split(8);
    assert_eq!(s1, s8);
    assert_eq!(
        k1, k8,
        "traced split telemetry diverged across thread counts"
    );
    assert!(k1.contains("mc.rare.split.replica"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// ISSUE 9 satellite: CI coverage. Across 100 independent IS runs
    /// (fresh derived seed each), the claimed 95% CI must cover the
    /// exact WER at least 90 times.
    #[test]
    fn ci_coverage_is_at_least_90_percent(
        scheme_pick in any::<u64>(),
        eps in 5e-3f64..0.03,
        base_seed in any::<u64>(),
    ) {
        let cells = [(Scheme::Dap, 4usize), (Scheme::Hamming, 6), (Scheme::Uncoded, 8)];
        let (scheme, k) = cells[(scheme_pick % cells.len() as u64) as usize];
        let exact = failure_profile(scheme, k).wer(eps);
        let mut covered = 0u32;
        for run in 0..100u64 {
            let tally = is_word_error_parallel(
                scheme,
                k,
                RareChannel::Iid { eps },
                Twist::theta(1.5),
                10_000,
                shard_seed(base_seed, run),
                2,
            );
            if (tally.rate() - exact).abs() <= tally.confidence95() {
                covered += 1;
            }
        }
        prop_assert!(
            covered >= 90,
            "{} k={k} eps={eps}: CI covered exact WER only {covered}/100 times",
            scheme.name()
        );
    }

    /// Weighted determinism across a random grid: thread counts 1, 2,
    /// and 7 agree on the IS tally for any (scheme, eps, trials, seed),
    /// the rare-event mirror of PR 4's plain-MC determinism proptest.
    #[test]
    fn is_tally_is_thread_count_invariant(
        scheme_pick in any::<u64>(),
        eps in 1e-4f64..0.05,
        theta in 0.0f64..5.0,
        trials in 1u64..80_000,
        root_seed in any::<u64>(),
    ) {
        let catalog = oracle_catalog();
        let (scheme, k) = catalog[(scheme_pick % catalog.len() as u64) as usize];
        let ch = RareChannel::Iid { eps };
        let tw = Twist::theta(theta);
        let one = is_word_error_parallel(scheme, k, ch, tw, trials, root_seed, 1);
        let two = is_word_error_parallel(scheme, k, ch, tw, trials, root_seed, 2);
        let seven = is_word_error_parallel(scheme, k, ch, tw, trials, root_seed, 7);
        prop_assert_eq!(one, two, "1 vs 2 threads diverged");
        prop_assert_eq!(one, seven, "1 vs 7 threads diverged");
        prop_assert_eq!(one.trials, trials);
    }
}
