//! Determinism properties for the sharded Monte-Carlo runner (ISSUE 4
//! satellite): the thread count is a pure execution detail, so
//! [`word_error_rate_parallel`] must return an identical
//! [`WordErrorEstimate`] — rate, trials, and failures all equal — no
//! matter how many workers execute the shard list.

use proptest::prelude::*;
use socbus_channel::{mc_shards, word_error_rate_parallel, WordErrorEstimate};
use socbus_codes::Scheme;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For a random (scheme, ε, trials, root seed), running the sharded
    /// estimator on 1, 2, and 7 threads yields the *same* estimate. The
    /// trial range straddles the 65 536-trial shard size so single-shard,
    /// exact-multiple, and ragged-remainder decompositions all appear.
    #[test]
    fn estimate_is_thread_count_invariant(
        scheme_pick in any::<u64>(),
        eps in 1e-4f64..0.05,
        trials in 1u64..80_000,
        root_seed in any::<u64>(),
    ) {
        let catalog = Scheme::catalog();
        let scheme = catalog[(scheme_pick % catalog.len() as u64) as usize];
        let one = word_error_rate_parallel(scheme, 16, eps, trials, root_seed, 1);
        let two = word_error_rate_parallel(scheme, 16, eps, trials, root_seed, 2);
        let seven = word_error_rate_parallel(scheme, 16, eps, trials, root_seed, 7);
        prop_assert_eq!(one, two, "1 vs 2 threads diverged");
        prop_assert_eq!(one, seven, "1 vs 7 threads diverged");
        prop_assert_eq!(one.trials, trials, "merged trial count must be exact");
        let expected: WordErrorEstimate = WordErrorEstimate {
            rate: if trials == 0 { 0.0 } else { one.failures as f64 / trials as f64 },
            trials,
            failures: one.failures,
        };
        prop_assert_eq!(one, expected, "rate must be failures/trials of the merge");
    }

    /// The shard decomposition itself is a function of (trials, seed)
    /// only: shard trial counts always sum to the request, and shard
    /// seeds are distinct (SplitMix64 splitting), so no two shards ever
    /// replay the same RNG stream.
    #[test]
    fn shard_decomposition_is_exact_and_streams_distinct(
        trials in 1u64..500_000,
        root_seed in any::<u64>(),
    ) {
        let shards = mc_shards(trials, root_seed);
        let total: u64 = shards.iter().map(|(n, _)| n).sum();
        prop_assert_eq!(total, trials, "shard trials must sum to the request");
        prop_assert!(shards.iter().all(|(n, _)| *n > 0), "empty shard emitted");
        let mut seeds: Vec<u64> = shards.iter().map(|(_, s)| *s).collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), shards.len(), "duplicate shard seed");
    }
}
