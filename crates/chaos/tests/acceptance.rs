//! End-to-end acceptance of the chaos harness (the ISSUE 2 criterion):
//! a deliberately broken decoder must produce a violation whose shrunken
//! reproducer replays to the *same* violation through the exact file
//! path the `chaos -- replay` binary uses.

use socbus_channel::FaultSpec;
use socbus_chaos::schedule::{FaultSchedule, ScheduleAction, ScheduleEvent};
use socbus_chaos::{build_case, cli, run_case, InvariantKind, Repro, ScheduleFamily};
use socbus_codes::Scheme;

/// The full loop: violate → shrink → write file → parse file → re-run →
/// same violation key; and the file is canonical (byte-identical after a
/// parse/serialize round trip).
#[test]
fn sabotaged_decoder_shrinks_to_a_replayable_repro() {
    // A Sabotaged case with schedule noise around the trigger.
    let mut cfg = build_case(Scheme::Sabotaged, ScheduleFamily::BurstTrain, 3, 1_500, 2);
    cfg.schedule.events.push(ScheduleEvent {
        at_word: 0,
        action: ScheduleAction::Activate {
            id: 500,
            hop: 0,
            spec: FaultSpec::Iid { eps: 4e-3 },
        },
    });
    cfg.schedule.sort();

    let out = run_case(&cfg);
    let violation = out
        .violations
        .iter()
        .find(|v| v.kind == InvariantKind::SilentCorruption)
        .expect("the sabotaged decoder must trip silent-corruption");

    // Shrink and write the repro exactly as the binary would.
    let dir = std::env::temp_dir().join("socbus-chaos-acceptance");
    let file = cli::write_repro(&cfg, violation, &dir).expect("shrink + write succeeds");
    let text = std::fs::read_to_string(&file).expect("repro file readable");

    // Replay through the same code path `chaos -- replay <file>` uses.
    let replayed = cli::replay_text(&text)
        .expect("repro parses")
        .expect("the violation must reproduce on replay");
    assert_eq!(replayed.kind, violation.kind);
    assert_eq!(replayed.hop, violation.hop);

    // The written file is canonical: parse → serialize is byte-identical.
    let parsed = Repro::parse(&text).expect("parses");
    assert_eq!(parsed.serialize(), text);

    // The shrunken case is genuinely smaller than the original campaign
    // cell (fewer words; the burst-train noise stripped).
    assert!(parsed.case.words < cfg.words);
    assert!(parsed.case.schedule.events.len() < cfg.schedule.events.len());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every catalog scheme survives a short run of every schedule family —
/// the core soak claim, in miniature, as a tier-visible test.
#[test]
fn catalog_survives_short_runs_of_every_family() {
    for scheme in Scheme::catalog() {
        for family in ScheduleFamily::all() {
            let cfg = build_case(scheme, family, 1, 300, 2);
            let out = run_case(&cfg);
            assert!(
                out.violations.is_empty(),
                "{}: {:?}",
                cfg.name,
                out.violations.first()
            );
            assert!(
                out.worst_word_cycles <= out.budget_cycles,
                "{}: worst {} > budget {}",
                cfg.name,
                out.worst_word_cycles,
                out.budget_cycles
            );
        }
    }
}

/// A schedule drawn for one seed replays identically: same violations,
/// same report, same worst-case latency (the determinism contract behind
/// byte-identical soak JSON).
#[test]
fn campaign_cells_are_bit_deterministic() {
    let a = run_case(&build_case(
        Scheme::HammingX,
        ScheduleFamily::MixedMayhem,
        9,
        800,
        3,
    ));
    let b = run_case(&build_case(
        Scheme::HammingX,
        ScheduleFamily::MixedMayhem,
        9,
        800,
        3,
    ));
    assert_eq!(a.report, b.report);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.worst_word_cycles, b.worst_word_cycles);
}

/// Replay refuses non-canonical (hand-edited) files instead of silently
/// replaying something that would not round-trip.
#[test]
fn replay_rejects_non_canonical_text() {
    let cfg = build_case(Scheme::Dap, ScheduleFamily::DroopStorm, 2, 200, 2);
    let repro = Repro::new(
        cfg,
        &socbus_chaos::Violation {
            kind: InvariantKind::LatencyBound,
            hop: Some(0),
            word: 7,
            detail: String::new(),
        },
    );
    let canonical = repro.serialize();
    let edited = format!("{canonical}\n");
    assert!(cli::replay_text(&edited).is_err());
    // The canonical text itself parses fine (the case just doesn't
    // violate anything, so replay reports non-reproduction).
    assert_eq!(cli::replay_text(&canonical), Ok(None));
}

/// Empty schedules are legal and trivially healthy.
#[test]
fn empty_schedule_is_healthy() {
    let mut cfg = build_case(Scheme::Bsc, ScheduleFamily::BurstTrain, 4, 200, 2);
    cfg.schedule = FaultSchedule::default();
    let out = run_case(&cfg);
    assert!(out.violations.is_empty());
}
