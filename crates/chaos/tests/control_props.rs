//! Controller determinism and safe-state properties (ISSUE 6 satellite):
//! the closed-loop DVS controller's decision trace — the sequence of
//! `(swing, scheme)` operating points it walks through — is a pure
//! function of the seeds and the fault schedule, never of the worker
//! count executing the grid; and the safe-state contract holds for every
//! scheme in the paper's 17-entry catalog, detecting or not.

use proptest::prelude::*;
use socbus_chaos::runner::CaseOutcome;
use socbus_chaos::schedule::ScheduleFamily;
use socbus_chaos::{
    build_case, build_control_case, control_policy_for, run_case, run_control_parallel,
    InvariantKind,
};
use socbus_codes::Scheme;
use socbus_noc::link::Protocol;
use socbus_noc::{ControlCause, ControlPolicy};

/// Flattens one outcome's controller activity into a comparable decision
/// trace: for every hop and transition, the word it fired at, the cause,
/// the index walk, and the *operating point actually selected* (swing
/// bits and scheme name resolved through the policy ladder).
fn decision_trace(
    out: &CaseOutcome,
    policy: &ControlPolicy,
) -> Vec<(usize, u64, &'static str, usize, usize, u64, String)> {
    let mut trace = Vec::new();
    for (hop, report) in out.report.per_hop.iter().enumerate() {
        for t in &report.control {
            let point = &policy.points[t.to];
            trace.push((
                hop,
                t.at_word,
                t.cause.name(),
                t.from,
                t.to,
                point.swing.to_bits(),
                point.scheme.name(),
            ));
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For a random detecting scheme and seed, running the same four
    /// controller cells (one per schedule family) on 1 and 8 threads
    /// yields byte-for-byte identical decision traces — same words,
    /// same causes, same `(swing, scheme)` selections — and each relax
    /// in the trace carries the safe-state evidence the monitor demands.
    #[test]
    fn decision_traces_are_thread_count_invariant(
        scheme_pick in any::<u64>(),
        seed in 1u64..10_000,
    ) {
        let schemes = Scheme::detecting();
        let scheme = schemes[(scheme_pick % schemes.len() as u64) as usize];
        let policy = control_policy_for(scheme);
        let cells: Vec<(Scheme, ScheduleFamily, u64)> = ScheduleFamily::all()
            .into_iter()
            .map(|family| (scheme, family, seed))
            .collect();
        let one = run_control_parallel(&cells, 800, 1);
        let eight = run_control_parallel(&cells, 800, 8);
        prop_assert_eq!(one.len(), eight.len());
        let mut moved = 0usize;
        for ((name1, out1), (name8, out8)) in one.iter().zip(eight.iter()) {
            prop_assert_eq!(name1, name8, "cell order must be thread-invariant");
            let t1 = decision_trace(out1, &policy);
            let t8 = decision_trace(out8, &policy);
            prop_assert_eq!(&t1, &t8, "{}: decision trace diverged across thread counts", name1);
            moved += t1.len();
            prop_assert!(
                out1.violations.is_empty(),
                "{}: {:?}",
                name1,
                out1.violations.first()
            );
            // The trace itself must witness the safe-state contract,
            // independently of the monitor's verdict.
            for report in &out1.report.per_hop {
                for t in &report.control {
                    match t.cause {
                        ControlCause::Relax => prop_assert!(
                            t.to == t.from + 1 && t.guarantee >= t.observed_weight,
                            "{}: relax {t:?} outran its evidence",
                            name1
                        ),
                        ControlCause::Retreat => prop_assert_eq!(t.to + 1, t.from),
                        ControlCause::Emergency => prop_assert_eq!(t.to, 0),
                    }
                }
            }
        }
        prop_assert!(moved > 0, "four families must move the controller at least once");
    }
}

/// Every scheme of the paper's catalog passes through the safe-state
/// monitor. Detecting schemes run the standard campaign controller cell;
/// the five non-detecting schemes (no trouble signal of their own) still
/// validate and run under a ladder whose bottom points advertise a zero
/// guarantee — the contract then only permits relaxing into them off a
/// perfectly clean observation streak, which the monitor verifies.
#[test]
fn safe_state_holds_across_the_full_catalog() {
    let catalog = Scheme::catalog();
    assert_eq!(catalog.len(), 17, "the paper's catalog is 17 schemes");
    for (i, scheme) in catalog.into_iter().enumerate() {
        let seed = i as u64 + 11;
        let cfg = if scheme.detects_errors() {
            build_control_case(scheme, ScheduleFamily::MixedMayhem, seed, 1_000, 1)
        } else {
            let mut cfg = build_case(scheme, ScheduleFamily::MixedMayhem, seed, 1_000, 1);
            cfg.name = format!(
                "{}+ctl/{}",
                scheme.name(),
                ScheduleFamily::MixedMayhem.name()
            );
            cfg.protocol = Protocol::DetectRetransmit {
                rtt_cycles: 3,
                max_retries: 3,
            };
            cfg.degradation = None;
            let policy = control_policy_for(scheme);
            policy
                .validate(cfg.data_bits)
                .expect("a guarantee-0 tail is a legal (nonincreasing) ladder");
            cfg.controller = Some(policy);
            cfg
        };
        let out = run_case(&cfg);
        let safe_state_broken = out
            .violations
            .iter()
            .filter(|v| v.kind == InvariantKind::ControlSafeState)
            .count();
        assert_eq!(
            safe_state_broken,
            0,
            "{} broke safe-state: {:?}",
            cfg.name,
            out.violations.first()
        );
        let (kind, stats) = out.stats[4];
        assert_eq!(kind, InvariantKind::ControlSafeState);
        assert!(
            stats.checked > 0,
            "{}: the safe-state monitor must actually run",
            cfg.name
        );
        if scheme.detects_errors() {
            assert!(
                out.violations.is_empty(),
                "{}: {:?}",
                cfg.name,
                out.violations.first()
            );
        }
    }
}
