//! The `chaos` command-line tool: run randomized cases, replay repros.
//!
//! ```text
//! chaos case <scheme> <family> <seed> [words] [hops]
//!     Run one randomized chaos case. On violation: shrink it and write
//!     a reproducer under results/repro/, then exit nonzero.
//! chaos replay <file>
//!     Re-run a reproducer file; exit 0 iff the recorded violation
//!     reproduces (byte-identical canonical form is re-checked first).
//!     Accepts both path (`socbus-chaos-repro v1`) and mesh
//!     (`socbus-mesh-repro v1`) files, dispatched on the header.
//! chaos run [--smoke] [--threads N] [--trace-out <path>]
//!           [--health-out <path>] [out]
//!     Run the whole soak campaign on the deterministic parallel engine
//!     (same implementation as the `soak` binary; the JSON is
//!     byte-identical for any thread count). `--health-out` folds every
//!     cell's stream through the health monitor and writes a
//!     `socbus-incident v1` report with one scope per cell.
//! chaos control [--smoke] [--threads N] [--trace-out <path>]
//!               [--health-out <path>] [out]
//!     Run the closed-loop controller campaign: every detecting scheme
//!     under every schedule family with a per-hop DVS controller, all
//!     five invariants armed (including control-safe-state).
//! chaos mesh [--smoke] [--threads N] [--trace-out <path>]
//!            [--health-out <path>] [out]
//!     Run the mesh campaign: every catalog scheme under every mesh
//!     fault family on a 3x3 mesh, the five mesh invariants armed
//!     (packet-conservation, reroute-delivers, bounded-progress,
//!     mesh-silent-corruption, health-consistent). Every cell runs
//!     under the health monitor and the campaign writes a
//!     `socbus-incident v1` timeline (`--health-out`, default
//!     `results/BENCH_mesh_chaos.health.json`). See [`crate::mesh`].
//! ```
//!
//! The logic lives here (not in `bin/chaos.rs`) so the root package can
//! re-export the same entry point and integration tests can drive it
//! without spawning processes.

use std::path::Path;
use std::rc::Rc;

use socbus_codes::Scheme;
use socbus_noc::link::{DegradationAction, DegradationPolicy, PromotePolicy, Protocol};
use socbus_noc::{ControlPolicy, OperatingPoint};
use socbus_telemetry::{Recorder, Telemetry};

use crate::monitor::Violation;
use crate::replay::Repro;
use crate::runner::{run_case, run_case_with, CaseConfig};
use crate::schedule::{FaultSchedule, ScheduleFamily, ScheduleParams};
use crate::shrink::shrink;

/// Default words per CLI-driven case.
pub const DEFAULT_WORDS: u64 = 2_000;
/// Default hops per CLI-driven case.
pub const DEFAULT_HOPS: usize = 3;
/// Default data bits per word.
pub const DEFAULT_DATA_BITS: usize = 16;
/// Baseline i.i.d. ε under the schedule.
pub const DEFAULT_EPS: f64 = 1e-3;
/// Shrink budget (candidate re-runs).
pub const SHRINK_BUDGET: usize = 400;

/// Chooses a protocol that exercises the scheme's strengths: correcting
/// schemes alternate FEC and backoff-ARQ (by seed parity), detect-only
/// schemes get stop-and-wait retransmission, plain schemes run FEC.
#[must_use]
pub fn protocol_for(scheme: Scheme, seed: u64) -> Protocol {
    if scheme.corrects_errors() {
        if seed.is_multiple_of(2) {
            Protocol::Fec
        } else {
            Protocol::ArqBackoff {
                timeout_cycles: 3,
                backoff_base: 1,
                backoff_cap: 8,
                max_retries: 3,
            }
        }
    } else if scheme.detects_errors() {
        Protocol::DetectRetransmit {
            rtt_cycles: 3,
            max_retries: 3,
        }
    } else {
        Protocol::Fec
    }
}

/// The degradation ladder mixed-mayhem cases run with (other families
/// run ladder-free so force-degrade events stay no-ops). The recovery
/// clause re-promotes after four consecutive near-silent windows, so
/// soak campaigns exercise the full deploy/undo episode machinery.
#[must_use]
pub fn mayhem_ladder() -> DegradationPolicy {
    DegradationPolicy {
        window: 250,
        trigger: 0.25,
        ladder: vec![
            DegradationAction::RaiseSwing { factor: 1.3 },
            DegradationAction::SwitchScheme(Scheme::ExtHamming),
        ],
        promote: Some(PromotePolicy {
            quiet_windows: 4,
            trigger: 0.02,
        }),
    }
}

/// The operating-point ladder controller campaign cells run with:
/// a guard-banded ExtHamming safe state on top, then the cell's own
/// scheme at nominal and reduced swing. ExtHamming detects two errors —
/// at least as many as any detecting scheme in the catalog — so the
/// guarantee ladder is nonincreasing for every cell and the policy
/// always validates.
#[must_use]
pub fn control_policy_for(scheme: Scheme) -> ControlPolicy {
    ControlPolicy {
        points: vec![
            OperatingPoint {
                swing: 1.3,
                scheme: Scheme::ExtHamming,
            },
            OperatingPoint { swing: 1.0, scheme },
            OperatingPoint {
                swing: 0.85,
                scheme,
            },
        ],
        target_wer: 1e-2,
        window: 50,
        dwell: 2,
        lower_trouble: 0.05,
        raise_trouble: 0.2,
        storm_trouble: 0.4,
    }
}

/// Assembles the [`CaseConfig`] for one `(scheme, family, seed)` cell of
/// the campaign grid — the single source of truth shared by the CLI, the
/// soak bench, and the tests.
#[must_use]
pub fn build_case(
    scheme: Scheme,
    family: ScheduleFamily,
    seed: u64,
    words: u64,
    hops: usize,
) -> CaseConfig {
    let wires = scheme.build(DEFAULT_DATA_BITS).wires();
    let params = ScheduleParams { words, hops, wires };
    let schedule = FaultSchedule::random(family, &params, seed);
    CaseConfig {
        name: format!("{}/{}", scheme.name(), family.name()),
        scheme,
        data_bits: DEFAULT_DATA_BITS,
        hops,
        eps: DEFAULT_EPS,
        protocol: protocol_for(scheme, seed),
        degradation: (family == ScheduleFamily::MixedMayhem).then(mayhem_ladder),
        controller: None,
        words,
        traffic_seed: seed ^ 0xA5A5,
        sim_seed: seed,
        schedule,
    }
}

/// Assembles the closed-loop controller cell for one `(scheme, family,
/// seed)` — the same schedule grid as [`build_case`], but with a per-hop
/// DVS controller instead of a degradation ladder and a retransmitting
/// protocol (the controller's trouble signal needs retries or detected
/// words to observe).
///
/// # Panics
///
/// Panics if the scheme cannot detect errors (the controller has no
/// trouble signal to observe) or the policy fails to validate.
#[must_use]
pub fn build_control_case(
    scheme: Scheme,
    family: ScheduleFamily,
    seed: u64,
    words: u64,
    hops: usize,
) -> CaseConfig {
    assert!(
        scheme.detects_errors(),
        "controller cells need a detecting scheme, got {scheme:?}"
    );
    let policy = control_policy_for(scheme);
    policy
        .validate(DEFAULT_DATA_BITS)
        .expect("campaign control policy must validate");
    let mut cfg = build_case(scheme, family, seed, words, hops);
    cfg.name = format!("{}+ctl/{}", scheme.name(), family.name());
    cfg.protocol = Protocol::DetectRetransmit {
        rtt_cycles: 3,
        max_retries: 3,
    };
    cfg.degradation = None;
    cfg.controller = Some(policy);
    cfg
}

/// Shrinks a violating case and writes the reproducer file. Returns the
/// path written.
///
/// # Errors
///
/// Returns a message if shrinking fails to reproduce or the file cannot
/// be written.
pub fn write_repro(
    cfg: &CaseConfig,
    violation: &Violation,
    dir: &Path,
) -> Result<std::path::PathBuf, String> {
    let report = shrink(cfg, violation.key(), SHRINK_BUDGET)
        .ok_or_else(|| format!("case {} does not reproduce {violation:?}", cfg.name))?;
    let repro = Repro::new(report.case, &report.violation);
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let file = dir.join(format!(
        "{}.txt",
        cfg.name.replace(['/', '(', ')', '+'], "_")
    ));
    std::fs::write(&file, repro.serialize())
        .map_err(|e| format!("write {}: {e}", file.display()))?;
    Ok(file)
}

/// Replays a reproducer file: parses it, re-checks the canonical form,
/// re-runs the case, and reports whether the recorded violation fired.
///
/// # Errors
///
/// Returns a message on parse failure; `Ok(None)` means the case ran but
/// the violation did *not* reproduce.
pub fn replay_text(text: &str) -> Result<Option<Violation>, String> {
    replay_text_with(text, Telemetry::off())
}

/// [`replay_text`] with a telemetry handle wired through the replayed
/// case (the `chaos replay` command uses this to produce a Perfetto
/// trace of every reproducer).
///
/// # Errors
///
/// Returns a message on parse failure; `Ok(None)` means the case ran but
/// the violation did *not* reproduce.
pub fn replay_text_with(text: &str, tel: Telemetry) -> Result<Option<Violation>, String> {
    let repro = Repro::parse(text)?;
    if repro.serialize() != text {
        return Err("file is not in canonical form (was it hand-edited?)".into());
    }
    let key = (repro.expect.kind, repro.expect.hop);
    Ok(run_case_with(&repro.case, tel)
        .violations
        .into_iter()
        .find(|v| v.key() == key))
}

/// The `chaos` binary's entry point. Returns the process exit code.
#[must_use]
pub fn main_with_args(args: &[String]) -> i32 {
    match args {
        [cmd, rest @ ..] if cmd == "run" => crate::campaign::campaign_main(rest),
        [cmd, rest @ ..] if cmd == "control" => crate::campaign::control_main(rest),
        [cmd, rest @ ..] if cmd == "mesh" => crate::mesh::mesh_main(rest),
        [cmd, file] if cmd == "replay" => {
            let text = match std::fs::read_to_string(file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("chaos: cannot read {file}: {e}");
                    return 2;
                }
            };
            // Mesh reproducers replay through the same subcommand,
            // dispatched on the header line.
            if text.starts_with("socbus-mesh-repro") {
                let recorder = Rc::new(Recorder::new());
                let outcome =
                    crate::mesh::replay_mesh_text_with(&text, Telemetry::from_recorder(&recorder));
                if outcome.is_ok() {
                    // The replay's health pass: incident report next to
                    // the repro, and its counter tracks in the trace.
                    let mut health = socbus_telemetry::HealthReport::new();
                    health.push_scope(socbus_telemetry::HealthAggregator::scope_from_recorder(
                        file,
                        &socbus_telemetry::HealthConfig::default(),
                        &recorder,
                    ));
                    let health_path = format!("{file}.health.json");
                    match std::fs::write(&health_path, health.serialize()) {
                        Ok(()) => eprintln!("incident report written to {health_path}"),
                        Err(e) => eprintln!("chaos: cannot write {health_path}: {e}"),
                    }
                    let trace_path = format!("{file}.trace.json");
                    match std::fs::write(
                        &trace_path,
                        recorder.export_chrome_trace_with_counters(&health.counter_samples()),
                    ) {
                        Ok(()) => {
                            eprintln!("trace written to {trace_path} (load in ui.perfetto.dev)");
                        }
                        Err(e) => eprintln!("chaos: cannot write {trace_path}: {e}"),
                    }
                }
                return match outcome {
                    Ok(Some(v)) => {
                        println!(
                            "reproduced: {} at link {} cycle {} — {}",
                            v.kind.name(),
                            v.link.map_or_else(|| "e2e".into(), |l| l.to_string()),
                            v.cycle,
                            v.detail
                        );
                        0
                    }
                    Ok(None) => {
                        println!("did NOT reproduce (the bug may be fixed)");
                        1
                    }
                    Err(e) => {
                        eprintln!("chaos: {e}");
                        2
                    }
                };
            }
            let recorder = Rc::new(Recorder::new());
            let outcome = replay_text_with(&text, Telemetry::from_recorder(&recorder));
            if outcome.is_ok() {
                // Every successfully parsed reproducer gets a Perfetto
                // trace next to it, reproduced or not — the trace of a
                // non-reproducing run is exactly what shows the fix.
                let trace_path = format!("{file}.trace.json");
                match std::fs::write(&trace_path, recorder.export_chrome_trace()) {
                    Ok(()) => eprintln!("trace written to {trace_path} (load in ui.perfetto.dev)"),
                    Err(e) => eprintln!("chaos: cannot write {trace_path}: {e}"),
                }
            }
            match outcome {
                Ok(Some(v)) => {
                    println!(
                        "reproduced: {} at hop {} word {} — {}",
                        v.kind.name(),
                        v.hop.map_or_else(|| "e2e".into(), |h| h.to_string()),
                        v.word,
                        v.detail
                    );
                    0
                }
                Ok(None) => {
                    println!("did NOT reproduce (the bug may be fixed)");
                    1
                }
                Err(e) => {
                    eprintln!("chaos: {e}");
                    2
                }
            }
        }
        [cmd, rest @ ..] if cmd == "case" && (3..=5).contains(&rest.len()) => {
            let Some(scheme) = Scheme::from_name(&rest[0]) else {
                eprintln!("chaos: unknown scheme {:?}", rest[0]);
                return 2;
            };
            let Some(family) = ScheduleFamily::from_name(&rest[1]) else {
                eprintln!("chaos: unknown family {:?}", rest[1]);
                return 2;
            };
            let Ok(seed) = rest[2].parse::<u64>() else {
                eprintln!("chaos: bad seed {:?}", rest[2]);
                return 2;
            };
            let words = rest
                .get(3)
                .and_then(|w| w.parse().ok())
                .unwrap_or(DEFAULT_WORDS);
            let hops = rest
                .get(4)
                .and_then(|h| h.parse().ok())
                .unwrap_or(DEFAULT_HOPS);
            let cfg = build_case(scheme, family, seed, words, hops);
            let out = run_case(&cfg);
            println!(
                "{}: {} words, worst latency {}/{} cycles, e2e residual {}, {} violation(s)",
                cfg.name,
                out.report.offered,
                out.worst_word_cycles,
                out.budget_cycles,
                out.report.end_to_end_errors,
                out.violations.len()
            );
            if let Some(v) = out.violations.first() {
                eprintln!("violation: {}", v.detail);
                match write_repro(&cfg, v, Path::new("results/repro")) {
                    Ok(file) => eprintln!("reproducer written to {}", file.display()),
                    Err(e) => eprintln!("chaos: shrink failed: {e}"),
                }
                return 1;
            }
            0
        }
        _ => {
            eprintln!(
                "usage:\n  chaos case <scheme> <family> <seed> [words] [hops]\n  \
                 chaos replay <file>\n  \
                 chaos run [--smoke] [--threads N] [--trace-out <path>] \
                 [--health-out <path>] [out]\n  \
                 chaos control [--smoke] [--threads N] [--trace-out <path>] \
                 [--health-out <path>] [out]\n  \
                 chaos mesh [--smoke] [--threads N] [--trace-out <path>] \
                 [--health-out <path>] [out]\n\n\
                 families: {}\nmesh families: {}",
                ScheduleFamily::all().map(|f| f.name()).join(", "),
                crate::mesh::MeshFamily::all().map(|f| f.name()).join(", ")
            );
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_grid_cases_are_deterministic() {
        let a = build_case(Scheme::Dap, ScheduleFamily::BurstTrain, 7, 500, 3);
        let b = build_case(Scheme::Dap, ScheduleFamily::BurstTrain, 7, 500, 3);
        assert_eq!(a, b);
        assert_eq!(a.name, "DAP/burst_train");
    }

    #[test]
    fn control_policies_validate_for_every_detecting_scheme() {
        for scheme in Scheme::detecting() {
            let cfg = build_control_case(scheme, ScheduleFamily::DroopStorm, 3, 400, 2);
            assert!(cfg.controller.is_some());
            assert!(cfg.degradation.is_none());
            assert!(cfg.name.contains("+ctl/"));
        }
    }

    #[test]
    fn protocols_match_the_scheme_class() {
        assert_eq!(protocol_for(Scheme::Uncoded, 0), Protocol::Fec);
        assert!(matches!(
            protocol_for(Scheme::Parity, 0),
            Protocol::DetectRetransmit { .. }
        ));
        assert_eq!(protocol_for(Scheme::Dap, 0), Protocol::Fec);
        assert!(matches!(
            protocol_for(Scheme::Dap, 1),
            Protocol::ArqBackoff { .. }
        ));
    }

    #[test]
    fn bad_usage_exits_2() {
        assert_eq!(main_with_args(&[]), 2);
        assert_eq!(
            main_with_args(&["replay".into(), "/no/such/file".into()]),
            2
        );
        assert_eq!(
            main_with_args(&[
                "case".into(),
                "Nope".into(),
                "burst_train".into(),
                "1".into()
            ]),
            2
        );
    }
}
