//! The reproducer file format: `socbus-chaos-repro v1`.
//!
//! A repro file is a line-based, human-readable, fully self-contained
//! description of one chaos case plus the violation it is expected to
//! produce. The format round-trips *byte-identically*:
//! `serialize(parse(text)) == text` for every file this module writes —
//! floats are rendered with Rust's shortest-roundtrip `{:?}` formatting,
//! so re-serialization is canonical and replays are reproducible across
//! runs and machines.
//!
//! ```text
//! socbus-chaos-repro v1
//! name Sabotaged/mixed_mayhem
//! scheme Sabotaged
//! data_bits 16
//! hops 2
//! eps 0.0
//! protocol detect-retransmit rtt=3 max_retries=3
//! degradation window=200 trigger=0.2
//! rung raise-swing factor=1.3
//! rung switch-scheme ExtHamming
//! promote quiet_windows=3 trigger=0.02
//! words 9
//! traffic_seed 1
//! sim_seed 2
//! event at=0 activate id=900 hop=0 spec=iid eps=0.005
//! event at=4 deactivate id=900
//! event at=5 force-degrade hop=1
//! expect invariant=silent-corruption hop=0 word=8
//! ```
//!
//! The mesh campaign writes a sibling format with the header
//! `socbus-mesh-repro v1` (see [`crate::mesh::MeshRepro`]): same
//! line-based canonical discipline and the same `spec=` / `protocol`
//! grammars, but with mesh geometry, an `e2e` line, link-indexed
//! events (`link-down link=N`, `link-up link=N`), and mesh invariant
//! names in the `expect` line. `chaos replay` dispatches on the header
//! line, so both kinds of file replay through the same subcommand.

use std::fmt::Write as _;

use socbus_channel::{BridgeMode, FaultSpec};
use socbus_codes::Scheme;
use socbus_noc::link::{DegradationAction, DegradationPolicy, PromotePolicy, Protocol};
use socbus_noc::{ControlPolicy, OperatingPoint};

use crate::monitor::{InvariantKind, Violation};
use crate::runner::CaseConfig;
use crate::schedule::{FaultSchedule, ScheduleAction, ScheduleEvent};

/// The violation a repro file promises to reproduce.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpectedViolation {
    /// Invariant that must break.
    pub kind: InvariantKind,
    /// Hop it must break on (`None` = path-level, rendered `e2e`).
    pub hop: Option<usize>,
    /// Word index it broke at in the original run (informational; replay
    /// matches on `(kind, hop)` only, since the index is already minimal
    /// after shrinking).
    pub word: u64,
}

/// A parsed (or to-be-written) reproducer.
#[derive(Clone, Debug, PartialEq)]
pub struct Repro {
    /// The case to re-run.
    pub case: CaseConfig,
    /// The violation it must produce.
    pub expect: ExpectedViolation,
}

const HEADER: &str = "socbus-chaos-repro v1";

impl Repro {
    /// Bundles a shrunken case with its violation.
    #[must_use]
    pub fn new(case: CaseConfig, violation: &Violation) -> Repro {
        Repro {
            case,
            expect: ExpectedViolation {
                kind: violation.kind,
                hop: violation.hop,
                word: violation.word,
            },
        }
    }

    /// Renders the canonical file text.
    #[must_use]
    pub fn serialize(&self) -> String {
        let c = &self.case;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "name {}", c.name);
        let _ = writeln!(out, "scheme {}", c.scheme.name());
        let _ = writeln!(out, "data_bits {}", c.data_bits);
        let _ = writeln!(out, "hops {}", c.hops);
        let _ = writeln!(out, "eps {:?}", c.eps);
        match c.protocol {
            Protocol::Fec => {
                let _ = writeln!(out, "protocol fec");
            }
            Protocol::DetectRetransmit {
                rtt_cycles,
                max_retries,
            } => {
                let _ = writeln!(
                    out,
                    "protocol detect-retransmit rtt={rtt_cycles} max_retries={max_retries}"
                );
            }
            Protocol::ArqBackoff {
                timeout_cycles,
                backoff_base,
                backoff_cap,
                max_retries,
            } => {
                let _ = writeln!(
                    out,
                    "protocol arq-backoff timeout={timeout_cycles} base={backoff_base} \
                     cap={backoff_cap} max_retries={max_retries}"
                );
            }
        }
        if let Some(policy) = &c.degradation {
            let _ = writeln!(
                out,
                "degradation window={} trigger={:?}",
                policy.window, policy.trigger
            );
            for rung in &policy.ladder {
                match rung {
                    DegradationAction::RaiseSwing { factor } => {
                        let _ = writeln!(out, "rung raise-swing factor={factor:?}");
                    }
                    DegradationAction::SwitchScheme(scheme) => {
                        let _ = writeln!(out, "rung switch-scheme {}", scheme.name());
                    }
                }
            }
            if let Some(promote) = policy.promote {
                let _ = writeln!(
                    out,
                    "promote quiet_windows={} trigger={:?}",
                    promote.quiet_windows, promote.trigger
                );
            }
        }
        if let Some(policy) = &c.controller {
            let _ = writeln!(
                out,
                "controller target={:?} window={} dwell={} lower={:?} raise={:?} storm={:?}",
                policy.target_wer,
                policy.window,
                policy.dwell,
                policy.lower_trouble,
                policy.raise_trouble,
                policy.storm_trouble
            );
            for p in &policy.points {
                let _ = writeln!(out, "point swing={:?} scheme={}", p.swing, p.scheme.name());
            }
        }
        let _ = writeln!(out, "words {}", c.words);
        let _ = writeln!(out, "traffic_seed {}", c.traffic_seed);
        let _ = writeln!(out, "sim_seed {}", c.sim_seed);
        for e in &c.schedule.events {
            let _ = write!(out, "event at={} ", e.at_word);
            match &e.action {
                ScheduleAction::Activate { id, hop, spec } => {
                    let _ = writeln!(out, "activate id={id} hop={hop} spec={}", spec_str(spec));
                }
                ScheduleAction::Deactivate { id } => {
                    let _ = writeln!(out, "deactivate id={id}");
                }
                ScheduleAction::ForceDegrade { hop } => {
                    let _ = writeln!(out, "force-degrade hop={hop}");
                }
            }
        }
        let _ = writeln!(
            out,
            "expect invariant={} hop={} word={}",
            self.expect.kind.name(),
            self.expect
                .hop
                .map_or_else(|| "e2e".to_owned(), |h| h.to_string()),
            self.expect.word
        );
        out
    }

    /// Parses a repro file.
    ///
    /// # Errors
    ///
    /// Returns a line-tagged message on any malformed or missing field.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty repro file")?;
        if first != HEADER {
            return Err(format!("bad header {first:?}; expected {HEADER:?}"));
        }
        let mut name = None;
        let mut scheme = None;
        let mut data_bits = None;
        let mut hops = None;
        let mut eps = None;
        let mut protocol = None;
        let mut degradation: Option<DegradationPolicy> = None;
        let mut controller: Option<ControlPolicy> = None;
        let mut words = None;
        let mut traffic_seed = None;
        let mut sim_seed = None;
        let mut events = Vec::new();
        let mut expect = None;
        for (lineno, line) in lines {
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| at(format!("malformed line {line:?}")))?;
            match key {
                "name" => name = Some(rest.to_owned()),
                "scheme" => {
                    scheme = Some(
                        Scheme::from_name(rest)
                            .ok_or_else(|| at(format!("unknown scheme {rest:?}")))?,
                    );
                }
                "data_bits" => data_bits = Some(parse_num(rest).map_err(&at)?),
                "hops" => hops = Some(parse_num(rest).map_err(&at)?),
                "eps" => eps = Some(parse_f64(rest).map_err(&at)?),
                "protocol" => protocol = Some(parse_protocol(rest).map_err(&at)?),
                "degradation" => {
                    let mut toks = rest.split_whitespace();
                    let window = kv(toks.next(), "window").and_then(parse_num).map_err(&at)?;
                    let trigger = kv(toks.next(), "trigger")
                        .and_then(parse_f64)
                        .map_err(&at)?;
                    degradation = Some(DegradationPolicy {
                        window,
                        trigger,
                        ladder: Vec::new(),
                        promote: None,
                    });
                }
                "rung" => {
                    let policy = degradation
                        .as_mut()
                        .ok_or_else(|| at("rung before degradation".into()))?;
                    policy.ladder.push(parse_rung(rest).map_err(&at)?);
                }
                "promote" => {
                    let policy = degradation
                        .as_mut()
                        .ok_or_else(|| at("promote before degradation".into()))?;
                    let mut toks = rest.split_whitespace();
                    let quiet_windows = kv(toks.next(), "quiet_windows")
                        .and_then(parse_num)
                        .map_err(&at)?;
                    let trigger = kv(toks.next(), "trigger")
                        .and_then(parse_f64)
                        .map_err(&at)?;
                    policy.promote = Some(PromotePolicy {
                        quiet_windows,
                        trigger,
                    });
                }
                "controller" => {
                    let mut toks = rest.split_whitespace();
                    let target_wer = kv(toks.next(), "target").and_then(parse_f64).map_err(&at)?;
                    let window = kv(toks.next(), "window").and_then(parse_num).map_err(&at)?;
                    let dwell = kv(toks.next(), "dwell").and_then(parse_num).map_err(&at)?;
                    let lower_trouble =
                        kv(toks.next(), "lower").and_then(parse_f64).map_err(&at)?;
                    let raise_trouble =
                        kv(toks.next(), "raise").and_then(parse_f64).map_err(&at)?;
                    let storm_trouble =
                        kv(toks.next(), "storm").and_then(parse_f64).map_err(&at)?;
                    controller = Some(ControlPolicy {
                        points: Vec::new(),
                        target_wer,
                        window,
                        dwell,
                        lower_trouble,
                        raise_trouble,
                        storm_trouble,
                    });
                }
                "point" => {
                    let policy = controller
                        .as_mut()
                        .ok_or_else(|| at("point before controller".into()))?;
                    let mut toks = rest.split_whitespace();
                    let swing = kv(toks.next(), "swing").and_then(parse_f64).map_err(&at)?;
                    let name = kv(toks.next(), "scheme").map_err(&at)?;
                    let scheme = Scheme::from_name(&name)
                        .ok_or_else(|| at(format!("unknown scheme {name:?}")))?;
                    policy.points.push(OperatingPoint { swing, scheme });
                }
                "words" => words = Some(parse_num(rest).map_err(&at)?),
                "traffic_seed" => traffic_seed = Some(parse_num(rest).map_err(&at)?),
                "sim_seed" => sim_seed = Some(parse_num(rest).map_err(&at)?),
                "event" => events.push(parse_event(rest).map_err(&at)?),
                "expect" => expect = Some(parse_expect(rest).map_err(&at)?),
                other => return Err(at(format!("unknown key {other:?}"))),
            }
        }
        let missing = |what: &str| format!("missing {what}");
        Ok(Repro {
            case: CaseConfig {
                name: name.ok_or_else(|| missing("name"))?,
                scheme: scheme.ok_or_else(|| missing("scheme"))?,
                data_bits: data_bits.ok_or_else(|| missing("data_bits"))?,
                hops: hops.ok_or_else(|| missing("hops"))?,
                eps: eps.ok_or_else(|| missing("eps"))?,
                protocol: protocol.ok_or_else(|| missing("protocol"))?,
                degradation,
                controller,
                words: words.ok_or_else(|| missing("words"))?,
                traffic_seed: traffic_seed.ok_or_else(|| missing("traffic_seed"))?,
                sim_seed: sim_seed.ok_or_else(|| missing("sim_seed"))?,
                schedule: FaultSchedule { events },
            },
            expect: expect.ok_or_else(|| missing("expect"))?,
        })
    }
}

pub(crate) fn spec_str(spec: &FaultSpec) -> String {
    match *spec {
        FaultSpec::Iid { eps } => format!("iid eps={eps:?}"),
        FaultSpec::Burst {
            eps_good,
            eps_bad,
            p_enter,
            p_exit,
        } => format!(
            "burst eps_good={eps_good:?} eps_bad={eps_bad:?} p_enter={p_enter:?} p_exit={p_exit:?}"
        ),
        FaultSpec::StuckAt { wire, value } => {
            format!("stuck-at wire={wire} value={}", u8::from(value))
        }
        FaultSpec::Bridge { wire, mode } => format!(
            "bridge wire={wire} mode={}",
            match mode {
                BridgeMode::And => "and",
                BridgeMode::Or => "or",
            }
        ),
        FaultSpec::Droop {
            eps,
            scale,
            start,
            duration,
        } => format!("droop eps={eps:?} scale={scale:?} start={start} duration={duration}"),
    }
}

/// Extracts the value of a `key=value` token, checking the key.
pub(crate) fn kv(tok: Option<&str>, key: &str) -> Result<String, String> {
    let tok = tok.ok_or_else(|| format!("missing {key}=..."))?;
    let (k, v) = tok
        .split_once('=')
        .ok_or_else(|| format!("expected {key}=..., got {tok:?}"))?;
    if k != key {
        return Err(format!("expected key {key:?}, got {k:?}"));
    }
    Ok(v.to_owned())
}

pub(crate) fn parse_num<T: std::str::FromStr>(s: impl AsRef<str>) -> Result<T, String> {
    let s = s.as_ref();
    s.parse().map_err(|_| format!("bad integer {s:?}"))
}

pub(crate) fn parse_f64(s: impl AsRef<str>) -> Result<f64, String> {
    let s = s.as_ref();
    s.parse().map_err(|_| format!("bad float {s:?}"))
}

pub(crate) fn parse_protocol(rest: &str) -> Result<Protocol, String> {
    let mut toks = rest.split_whitespace();
    match toks.next() {
        Some("fec") => Ok(Protocol::Fec),
        Some("detect-retransmit") => Ok(Protocol::DetectRetransmit {
            rtt_cycles: kv(toks.next(), "rtt").and_then(parse_num)?,
            max_retries: kv(toks.next(), "max_retries").and_then(parse_num)?,
        }),
        Some("arq-backoff") => Ok(Protocol::ArqBackoff {
            timeout_cycles: kv(toks.next(), "timeout").and_then(parse_num)?,
            backoff_base: kv(toks.next(), "base").and_then(parse_num)?,
            backoff_cap: kv(toks.next(), "cap").and_then(parse_num)?,
            max_retries: kv(toks.next(), "max_retries").and_then(parse_num)?,
        }),
        other => Err(format!("unknown protocol {other:?}")),
    }
}

fn parse_rung(rest: &str) -> Result<DegradationAction, String> {
    let mut toks = rest.split_whitespace();
    match toks.next() {
        Some("raise-swing") => Ok(DegradationAction::RaiseSwing {
            factor: kv(toks.next(), "factor").and_then(parse_f64)?,
        }),
        Some("switch-scheme") => {
            let name = toks.next().ok_or("missing scheme name")?;
            Ok(DegradationAction::SwitchScheme(
                Scheme::from_name(name).ok_or_else(|| format!("unknown scheme {name:?}"))?,
            ))
        }
        other => Err(format!("unknown rung {other:?}")),
    }
}

pub(crate) fn parse_spec(toks: &mut std::str::SplitWhitespace<'_>) -> Result<FaultSpec, String> {
    match toks.next() {
        Some("iid") => Ok(FaultSpec::Iid {
            eps: kv(toks.next(), "eps").and_then(parse_f64)?,
        }),
        Some("burst") => Ok(FaultSpec::Burst {
            eps_good: kv(toks.next(), "eps_good").and_then(parse_f64)?,
            eps_bad: kv(toks.next(), "eps_bad").and_then(parse_f64)?,
            p_enter: kv(toks.next(), "p_enter").and_then(parse_f64)?,
            p_exit: kv(toks.next(), "p_exit").and_then(parse_f64)?,
        }),
        Some("stuck-at") => Ok(FaultSpec::StuckAt {
            wire: kv(toks.next(), "wire").and_then(parse_num)?,
            value: match kv(toks.next(), "value")?.as_str() {
                "0" => false,
                "1" => true,
                other => return Err(format!("bad stuck-at value {other:?}")),
            },
        }),
        Some("bridge") => Ok(FaultSpec::Bridge {
            wire: kv(toks.next(), "wire").and_then(parse_num)?,
            mode: match kv(toks.next(), "mode")?.as_str() {
                "and" => BridgeMode::And,
                "or" => BridgeMode::Or,
                other => return Err(format!("bad bridge mode {other:?}")),
            },
        }),
        Some("droop") => Ok(FaultSpec::Droop {
            eps: kv(toks.next(), "eps").and_then(parse_f64)?,
            scale: kv(toks.next(), "scale").and_then(parse_f64)?,
            start: kv(toks.next(), "start").and_then(parse_num)?,
            duration: kv(toks.next(), "duration").and_then(parse_num)?,
        }),
        other => Err(format!("unknown fault spec {other:?}")),
    }
}

fn parse_event(rest: &str) -> Result<ScheduleEvent, String> {
    let mut toks = rest.split_whitespace();
    let at_word = kv(toks.next(), "at").and_then(parse_num)?;
    let action = match toks.next() {
        Some("activate") => {
            let id = kv(toks.next(), "id").and_then(parse_num)?;
            let hop = kv(toks.next(), "hop").and_then(parse_num)?;
            let spec_tag = kv(toks.next(), "spec")?;
            // `spec=iid` is followed by the spec's own tokens; re-join the
            // tag with the remainder so parse_spec sees a uniform stream.
            let joined = format!("{spec_tag} {}", toks.collect::<Vec<_>>().join(" "));
            let mut spec_toks = joined.split_whitespace();
            ScheduleAction::Activate {
                id,
                hop,
                spec: parse_spec(&mut spec_toks)?,
            }
        }
        Some("deactivate") => ScheduleAction::Deactivate {
            id: kv(toks.next(), "id").and_then(parse_num)?,
        },
        Some("force-degrade") => ScheduleAction::ForceDegrade {
            hop: kv(toks.next(), "hop").and_then(parse_num)?,
        },
        other => return Err(format!("unknown event action {other:?}")),
    };
    Ok(ScheduleEvent { at_word, action })
}

fn parse_expect(rest: &str) -> Result<ExpectedViolation, String> {
    let mut toks = rest.split_whitespace();
    let kind_name = kv(toks.next(), "invariant")?;
    let kind = InvariantKind::from_name(&kind_name)
        .ok_or_else(|| format!("unknown invariant {kind_name:?}"))?;
    let hop_str = kv(toks.next(), "hop")?;
    let hop = if hop_str == "e2e" {
        None
    } else {
        Some(parse_num(&hop_str)?)
    };
    let word = kv(toks.next(), "word").and_then(parse_num)?;
    Ok(ExpectedViolation { kind, hop, word })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ScheduleFamily, ScheduleParams};

    fn sample_repro() -> Repro {
        let params = ScheduleParams {
            words: 500,
            hops: 3,
            wires: 21,
        };
        let mut schedule = FaultSchedule::random(ScheduleFamily::MixedMayhem, &params, 12);
        schedule.events.push(ScheduleEvent {
            at_word: 7,
            action: ScheduleAction::Activate {
                id: 42,
                hop: 2,
                spec: FaultSpec::Bridge {
                    wire: 3,
                    mode: BridgeMode::And,
                },
            },
        });
        schedule.sort();
        Repro {
            case: CaseConfig {
                name: "DAP/mixed_mayhem".into(),
                scheme: Scheme::Dap,
                data_bits: 16,
                hops: 3,
                eps: 1.5e-3,
                protocol: Protocol::ArqBackoff {
                    timeout_cycles: 3,
                    backoff_base: 1,
                    backoff_cap: 8,
                    max_retries: 3,
                },
                degradation: Some(DegradationPolicy {
                    window: 200,
                    trigger: 0.2,
                    ladder: vec![
                        DegradationAction::RaiseSwing { factor: 1.3 },
                        DegradationAction::SwitchScheme(Scheme::ExtHamming),
                    ],
                    promote: Some(PromotePolicy {
                        quiet_windows: 3,
                        trigger: 0.02,
                    }),
                }),
                controller: None,
                words: 500,
                traffic_seed: 11,
                sim_seed: 7,
                schedule,
            },
            expect: ExpectedViolation {
                kind: InvariantKind::LatencyBound,
                hop: Some(1),
                word: 133,
            },
        }
    }

    #[test]
    fn serialize_parse_round_trips_structurally() {
        let repro = sample_repro();
        let text = repro.serialize();
        let back = Repro::parse(&text).expect("parses");
        assert_eq!(back, repro);
    }

    #[test]
    fn reserialization_is_byte_identical() {
        let repro = sample_repro();
        let text = repro.serialize();
        let back = Repro::parse(&text).expect("parses");
        assert_eq!(back.serialize(), text, "canonical form must be stable");
    }

    #[test]
    fn e2e_hop_and_every_spec_kind_round_trip() {
        let mut repro = sample_repro();
        repro.expect.hop = None;
        repro.case.degradation = None;
        repro.case.protocol = Protocol::Fec;
        repro.case.schedule = FaultSchedule {
            events: vec![
                ScheduleEvent {
                    at_word: 0,
                    action: ScheduleAction::Activate {
                        id: 0,
                        hop: 0,
                        spec: FaultSpec::Iid { eps: 1e-4 },
                    },
                },
                ScheduleEvent {
                    at_word: 1,
                    action: ScheduleAction::Activate {
                        id: 1,
                        hop: 1,
                        spec: FaultSpec::Burst {
                            eps_good: 1e-4,
                            eps_bad: 0.25,
                            p_enter: 0.05,
                            p_exit: 0.3,
                        },
                    },
                },
                ScheduleEvent {
                    at_word: 2,
                    action: ScheduleAction::Activate {
                        id: 2,
                        hop: 2,
                        spec: FaultSpec::StuckAt {
                            wire: 5,
                            value: true,
                        },
                    },
                },
                ScheduleEvent {
                    at_word: 3,
                    action: ScheduleAction::Activate {
                        id: 3,
                        hop: 0,
                        spec: FaultSpec::Droop {
                            eps: 2e-4,
                            scale: 150.0,
                            start: 4,
                            duration: 60,
                        },
                    },
                },
                ScheduleEvent {
                    at_word: 9,
                    action: ScheduleAction::Deactivate { id: 2 },
                },
                ScheduleEvent {
                    at_word: 10,
                    action: ScheduleAction::ForceDegrade { hop: 1 },
                },
            ],
        };
        let text = repro.serialize();
        let back = Repro::parse(&text).expect("parses");
        assert_eq!(back, repro);
        assert_eq!(back.serialize(), text);
    }

    #[test]
    fn controller_cases_round_trip_byte_identically() {
        let mut repro = sample_repro();
        repro.case.degradation = None;
        repro.case.controller = Some(ControlPolicy {
            points: vec![
                OperatingPoint {
                    swing: 1.4,
                    scheme: Scheme::ExtHamming,
                },
                OperatingPoint {
                    swing: 1.0,
                    scheme: Scheme::Parity,
                },
                OperatingPoint {
                    swing: 0.85,
                    scheme: Scheme::Parity,
                },
            ],
            target_wer: 1e-2,
            window: 32,
            dwell: 3,
            lower_trouble: 0.05,
            raise_trouble: 0.15,
            storm_trouble: 0.3,
        });
        repro.expect.kind = InvariantKind::ControlSafeState;
        let text = repro.serialize();
        assert!(text.contains("controller target=0.01 window=32 dwell=3"));
        assert!(text.contains("point swing=1.4 scheme=ExtHamming"));
        let back = Repro::parse(&text).expect("parses");
        assert_eq!(back, repro);
        assert_eq!(back.serialize(), text, "canonical form must be stable");
    }

    #[test]
    fn malformed_files_are_rejected_with_context() {
        assert!(Repro::parse("").is_err());
        assert!(Repro::parse("not a repro\n").is_err());
        let missing = "socbus-chaos-repro v1\nname x\n";
        let err = Repro::parse(missing).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let bad_scheme = "socbus-chaos-repro v1\nscheme Nonsense\n";
        let err = Repro::parse(bad_scheme).unwrap_err();
        assert!(err.contains("unknown scheme"), "{err}");
        let full = sample_repro().serialize();
        let broken = full.replace("invariant=latency-bound", "invariant=vibes");
        assert!(Repro::parse(&broken).unwrap_err().contains("vibes"));
    }
}
