//! Schedule shrinking: delta-debugging a violating case down to a
//! minimal reproducer.
//!
//! Given a [`CaseConfig`] that violates an invariant, [`shrink`] returns
//! a smaller config that still violates the *same* invariant on the
//! *same* hop ([`Violation::key`]). Two reductions interleave:
//!
//! * **event ddmin** — the classic Zeller/Hildebrandt algorithm over the
//!   schedule's event list: try dropping chunks at increasing
//!   granularity, keeping any complement that still reproduces;
//! * **word truncation** — cut the run right after the first violating
//!   word (end-of-run audits re-fire at the new, earlier end).
//!
//! Every candidate is checked by actually re-running it
//! ([`reproduces`]), so the result is a true reproducer by construction,
//! not a heuristic guess.

use crate::monitor::{InvariantKind, Violation};
use crate::runner::{reproduces, run_case, CaseConfig};

/// How a shrink run went.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The minimized case (always reproduces `key`).
    pub case: CaseConfig,
    /// The violation the minimized case produces for `key`.
    pub violation: Violation,
    /// Candidate re-runs spent.
    pub runs: usize,
}

/// Shrinks `cfg` while preserving a violation with `key`. Returns `None`
/// if `cfg` does not reproduce `key` in the first place.
///
/// `max_runs` bounds the candidate re-runs (the result is valid whenever
/// one is returned; a tighter budget just stops minimizing earlier).
#[must_use]
pub fn shrink(
    cfg: &CaseConfig,
    key: (InvariantKind, Option<usize>),
    max_runs: usize,
) -> Option<ShrinkReport> {
    let mut runs = 0usize;
    let mut check = |candidate: &CaseConfig| -> bool {
        runs += 1;
        reproduces(candidate, key)
    };
    if !check(cfg) {
        return None;
    }
    let mut best = cfg.clone();
    truncate_words(&mut best, key, &mut check, max_runs);
    ddmin_events(&mut best, &mut check, max_runs);
    // Events gone from the tail may allow an even earlier cut.
    truncate_words(&mut best, key, &mut check, max_runs);
    let violation = run_case(&best)
        .violations
        .into_iter()
        .find(|v| v.key() == key)
        .expect("the shrunken case reproduces by construction");
    Some(ShrinkReport {
        case: best,
        violation,
        runs,
    })
}

/// Cuts the run to end right after the first `key` violation (and drops
/// the events that can no longer fire).
fn truncate_words(
    best: &mut CaseConfig,
    key: (InvariantKind, Option<usize>),
    check: &mut impl FnMut(&CaseConfig) -> bool,
    max_runs: usize,
) {
    let Some(first) = run_case(best)
        .violations
        .into_iter()
        .find(|v| v.key() == key)
    else {
        return;
    };
    let cut = (first.word + 1).min(best.words);
    if cut >= best.words || max_runs == 0 {
        return;
    }
    let mut candidate = best.clone();
    candidate.words = cut;
    candidate.schedule.events.retain(|e| e.at_word < cut);
    if check(&candidate) {
        *best = candidate;
    }
}

/// Minimizing delta debugging over the event list.
fn ddmin_events(
    best: &mut CaseConfig,
    check: &mut impl FnMut(&CaseConfig) -> bool,
    max_runs: usize,
) {
    let mut granularity = 2usize;
    let mut spent = 0usize;
    while best.schedule.events.len() >= 2 && granularity <= best.schedule.events.len() {
        let len = best.schedule.events.len();
        let chunk = len.div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < len {
            if spent >= max_runs {
                return;
            }
            let end = (start + chunk).min(len);
            let mut candidate = best.clone();
            candidate.schedule.events.drain(start..end);
            spent += 1;
            if check(&candidate) {
                *best = candidate;
                reduced = true;
                break; // list changed; restart the scan at this granularity
            }
            start = end;
        }
        if reduced {
            granularity = granularity.saturating_sub(1).max(2);
        } else if granularity == best.schedule.events.len() {
            break;
        } else {
            granularity = (granularity * 2).min(best.schedule.events.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{
        FaultSchedule, ScheduleAction, ScheduleEvent, ScheduleFamily, ScheduleParams,
    };
    use socbus_channel::FaultSpec;
    use socbus_codes::Scheme;
    use socbus_noc::link::Protocol;

    /// A Sabotaged case buried in schedule noise: shrinking must strip
    /// the irrelevant events and cut the run short.
    #[test]
    fn shrinks_a_sabotaged_case_to_a_small_reproducer() {
        let params = ScheduleParams {
            words: 1_200,
            hops: 2,
            wires: 21,
        };
        let mut schedule = FaultSchedule::random(ScheduleFamily::BurstTrain, &params, 5);
        // The trigger: soft noise on hop 0 from word 0 (weight-1 errors
        // the sabotaged decoder silently mangles).
        schedule.events.push(ScheduleEvent {
            at_word: 0,
            action: ScheduleAction::Activate {
                id: 900,
                hop: 0,
                spec: FaultSpec::Iid { eps: 5e-3 },
            },
        });
        schedule.sort();
        let cfg = CaseConfig {
            name: "sabotage-shrink".into(),
            scheme: Scheme::Sabotaged,
            data_bits: 16,
            hops: 2,
            eps: 0.0,
            protocol: Protocol::Fec,
            degradation: None,
            controller: None,
            words: 1_200,
            traffic_seed: 1,
            sim_seed: 2,
            schedule,
        };
        let out = run_case(&cfg);
        let key = out
            .violations
            .iter()
            .find(|v| v.kind == crate::monitor::InvariantKind::SilentCorruption)
            .expect("sabotage must trip")
            .key();
        let report = shrink(&cfg, key, 500).expect("reproduces");
        assert!(report.case.words < cfg.words, "run must be truncated");
        assert!(
            report.case.schedule.events.len() <= 2,
            "noise events must be stripped: {:?}",
            report.case.schedule.events
        );
        assert!(reproduces(&report.case, key), "result is a reproducer");
        assert_eq!(report.violation.key(), key);
    }

    /// Shrinking a non-reproducing key yields nothing.
    #[test]
    fn shrink_refuses_a_healthy_case() {
        let cfg = CaseConfig {
            name: "healthy".into(),
            scheme: Scheme::Dap,
            data_bits: 16,
            hops: 1,
            eps: 1e-3,
            protocol: Protocol::Fec,
            degradation: None,
            controller: None,
            words: 200,
            traffic_seed: 1,
            sim_seed: 2,
            schedule: FaultSchedule::default(),
        };
        let key = (crate::monitor::InvariantKind::SilentCorruption, Some(0));
        assert!(shrink(&cfg, key, 100).is_none());
    }
}
