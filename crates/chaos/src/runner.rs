//! The chaos case runner: one scheme, one path, one fault schedule.
//!
//! [`run_case`] interprets a [`FaultSchedule`] against a live
//! [`PathSim`], word by word, with the [`Monitor`] watching every trace.
//! Everything is keyed off the seeds in the [`CaseConfig`], so the same
//! config always produces the same outcome — the property the shrinker
//! and the replay format rely on.

use std::collections::HashMap;

use socbus_channel::FaultSpec;
use socbus_noc::link::{DegradationPolicy, LinkConfig, Protocol};
use socbus_noc::traffic::UniformTraffic;
use socbus_noc::{ControlPolicy, PathConfig, PathReport, PathSim};
use socbus_telemetry::Telemetry;

use crate::monitor::{InvariantKind, InvariantStats, Monitor, Violation};
use crate::schedule::{FaultSchedule, ScheduleAction};

/// Everything needed to (re)run one chaos case deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseConfig {
    /// Display name (e.g. `"DAP/mixed_mayhem"`).
    pub name: String,
    /// Coding scheme on every hop.
    pub scheme: socbus_codes::Scheme,
    /// Data bits per word.
    pub data_bits: usize,
    /// Hops in the path.
    pub hops: usize,
    /// Baseline i.i.d. per-wire flip probability.
    pub eps: f64,
    /// Link protocol (also fixes the latency budget).
    pub protocol: Protocol,
    /// Optional degradation ladder on every hop.
    pub degradation: Option<DegradationPolicy>,
    /// Optional closed-loop DVS controller on every hop (mutually
    /// exclusive with `degradation`).
    pub controller: Option<ControlPolicy>,
    /// Words to carry.
    pub words: u64,
    /// Seed of the traffic generator.
    pub traffic_seed: u64,
    /// Seed of the path simulation (per-hop channels and activations).
    pub sim_seed: u64,
    /// The fault schedule to interpret.
    pub schedule: FaultSchedule,
}

impl CaseConfig {
    /// The path configuration this case runs over.
    #[must_use]
    pub fn path_config(&self) -> PathConfig {
        let mut link =
            LinkConfig::new(self.scheme, self.data_bits, self.eps).with_protocol(self.protocol);
        if let Some(policy) = &self.degradation {
            link = link.with_degradation(policy.clone());
        }
        if let Some(policy) = &self.controller {
            link = link.with_controller(policy.clone());
        }
        PathConfig::new(self.hops, link)
    }
}

/// What one chaos case produced.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// All invariant violations, in discovery order.
    pub violations: Vec<Violation>,
    /// The final path report.
    pub report: PathReport,
    /// Worst per-hop single-word latency observed (cycles).
    pub worst_word_cycles: u64,
    /// The protocol's worst-case single-word budget (cycles).
    pub budget_cycles: u64,
    /// Pass/fail tallies, one per [`InvariantKind::all`] entry.
    pub stats: [(InvariantKind, InvariantStats); 5],
}

/// Runs one case to completion. Deterministic in the config.
///
/// # Panics
///
/// Panics if the scheme rejects the width, `hops == 0`, or a schedule
/// event targets an out-of-range hop.
#[must_use]
pub fn run_case(cfg: &CaseConfig) -> CaseOutcome {
    run_case_with(cfg, Telemetry::off())
}

/// [`run_case`] with a telemetry handle wired through the whole stack:
/// each hop's link engine and fault injector report on the hop's track,
/// the monitor reports verdict counters and violation events, and every
/// interpreted schedule event lands on the control track (word-domain
/// `at_hop` labels). `run_case(cfg)` is exactly
/// `run_case_with(cfg, Telemetry::off())`.
///
/// # Panics
///
/// Panics if the scheme rejects the width, `hops == 0`, or a schedule
/// event targets an out-of-range hop.
#[must_use]
pub fn run_case_with(cfg: &CaseConfig, tel: Telemetry) -> CaseOutcome {
    let mut sim = PathSim::new_with_telemetry(&cfg.path_config(), cfg.sim_seed, tel.clone());
    let mut monitor = Monitor::new(cfg.hops, cfg.protocol, cfg.degradation.clone());
    monitor.set_control(cfg.controller.clone(), cfg.data_bits);
    monitor.set_telemetry(tel.clone());
    // id -> (hop, slot) of the live activation for that handle.
    let mut live: HashMap<u32, (usize, usize)> = HashMap::new();
    let mut next_event = 0usize;
    let traffic = UniformTraffic::new(cfg.data_bits, cfg.traffic_seed).take(cfg.words as usize);
    for (word, data) in traffic.enumerate() {
        let word = word as u64;
        while next_event < cfg.schedule.events.len()
            && cfg.schedule.events[next_event].at_word <= word
        {
            let action = &cfg.schedule.events[next_event].action;
            apply_event(action, cfg.sim_seed, &mut sim, &mut live);
            emit_schedule_event(&tel, action, word);
            next_event += 1;
        }
        let step = sim.step(data);
        monitor.observe(word, &step);
    }
    let report = sim.finish();
    monitor.finish(&report);
    monitor.flush_telemetry();
    let stats = InvariantKind::all().map(|k| (k, monitor.stats(k)));
    CaseOutcome {
        worst_word_cycles: monitor.worst_word_cycles,
        budget_cycles: cfg.protocol.worst_case_word_cycles(),
        violations: monitor.into_violations(),
        report,
        stats,
    }
}

/// Whether `cfg` produces at least one violation with the given key —
/// the oracle the shrinker and the replay checker share.
#[must_use]
pub fn reproduces(cfg: &CaseConfig, key: (InvariantKind, Option<usize>)) -> bool {
    run_case(cfg).violations.iter().any(|v| v.key() == key)
}

/// Activation seeds mix the sim seed with the event id (not the slot
/// index), so the same activation replays the same random stream even
/// after the shrinker removed its neighbours.
#[must_use]
pub fn activation_seed(sim_seed: u64, id: u32) -> u64 {
    sim_seed ^ (u64::from(id) + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Reports one interpreted schedule event on the control track. The
/// timestamp is the word index (word-domain), and hops are named with
/// the `at_hop` label so these never land on a cycle-domain hop track.
fn emit_schedule_event(tel: &Telemetry, action: &ScheduleAction, word: u64) {
    if !tel.is_enabled() {
        return;
    }
    match action {
        ScheduleAction::Activate { hop, spec, .. } => {
            let hop_label = hop.to_string();
            let labels = [
                ("at_hop", hop_label.as_str()),
                ("fault_family", spec.family()),
            ];
            tel.event("schedule.activate", &labels, word);
            tel.counter("schedule.activations", &labels, 1);
        }
        ScheduleAction::Deactivate { id } => {
            let id_label = id.to_string();
            tel.event("schedule.deactivate", &[("id", id_label.as_str())], word);
        }
        ScheduleAction::ForceDegrade { hop } => {
            let hop_label = hop.to_string();
            tel.event(
                "schedule.force_degrade",
                &[("at_hop", hop_label.as_str())],
                word,
            );
        }
    }
}

fn apply_event(
    action: &ScheduleAction,
    sim_seed: u64,
    sim: &mut PathSim,
    live: &mut HashMap<u32, (usize, usize)>,
) {
    match action {
        ScheduleAction::Activate { id, hop, spec } => {
            let engine = sim.engine_mut(*hop);
            // A droop window's `start` is relative to activation: pin it
            // to this hop's event clock now (see ScheduleAction docs).
            let spec = match *spec {
                FaultSpec::Droop {
                    eps,
                    scale,
                    start,
                    duration,
                } => FaultSpec::Droop {
                    eps,
                    scale,
                    start: engine.injector().cycles().saturating_add(start),
                    duration,
                },
                ref other => other.clone(),
            };
            let slot = engine
                .injector_mut()
                .push_spec(&spec, activation_seed(sim_seed, *id));
            // Faults arriving after the link moved off nominal swing see
            // the wire as it is now, not as it was at reset: fold the
            // current swing into the new slot's soft-error rate.
            let swing = engine.swing();
            if swing != 1.0 {
                engine.injector_mut().rescale_swing_slot(slot, swing);
            }
            live.insert(*id, (*hop, slot));
        }
        ScheduleAction::Deactivate { id } => {
            // Unknown ids are a no-op by contract (shrinker-safe).
            if let Some((hop, slot)) = live.remove(id) {
                sim.engine_mut(hop).injector_mut().set_enabled(slot, false);
            }
        }
        ScheduleAction::ForceDegrade { hop } => {
            let _ = sim.force_degrade(*hop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ScheduleEvent, ScheduleFamily, ScheduleParams};
    use socbus_codes::Scheme;

    fn base_case(scheme: Scheme, schedule: FaultSchedule) -> CaseConfig {
        CaseConfig {
            name: "test".into(),
            scheme,
            data_bits: 16,
            hops: 3,
            eps: 1e-3,
            protocol: Protocol::DetectRetransmit {
                rtt_cycles: 3,
                max_retries: 3,
            },
            degradation: None,
            controller: None,
            words: 1_500,
            traffic_seed: 11,
            sim_seed: 7,
            schedule,
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let params = ScheduleParams {
            words: 1_500,
            hops: 3,
            wires: Scheme::Dap.build(16).wires(),
        };
        let schedule = FaultSchedule::random(ScheduleFamily::MixedMayhem, &params, 9);
        let cfg = base_case(Scheme::Dap, schedule);
        let a = run_case(&cfg);
        let b = run_case(&cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.worst_word_cycles, b.worst_word_cycles);
    }

    #[test]
    fn honest_schemes_survive_every_family() {
        for scheme in [Scheme::Dap, Scheme::ExtHamming, Scheme::Parity] {
            let wires = scheme.build(16).wires();
            for family in ScheduleFamily::all() {
                let params = ScheduleParams {
                    words: 1_000,
                    hops: 3,
                    wires,
                };
                let schedule = FaultSchedule::random(family, &params, 3);
                let cfg = base_case(scheme, schedule);
                let out = run_case(&cfg);
                assert_eq!(
                    out.violations,
                    vec![],
                    "{scheme:?}/{family:?} must not violate: {:?}",
                    out.violations.first()
                );
                assert!(out.worst_word_cycles <= out.budget_cycles);
            }
        }
    }

    #[test]
    fn sabotaged_scheme_reproduces_by_key() {
        let schedule = FaultSchedule {
            events: vec![ScheduleEvent {
                at_word: 0,
                action: ScheduleAction::Activate {
                    id: 0,
                    hop: 0,
                    spec: FaultSpec::Iid { eps: 5e-3 },
                },
            }],
        };
        let mut cfg = base_case(Scheme::Sabotaged, schedule);
        cfg.eps = 0.0;
        cfg.protocol = Protocol::Fec;
        let out = run_case(&cfg);
        let v = out
            .violations
            .iter()
            .find(|v| v.kind == InvariantKind::SilentCorruption)
            .expect("the planted lie must trip the monitor");
        assert_eq!(v.hop, Some(0));
        assert!(reproduces(&cfg, v.key()));
    }

    #[test]
    fn deactivation_heals_the_link() {
        // A stuck-at window on an uncoded path: residuals accumulate only
        // while the window is open.
        let schedule = FaultSchedule {
            events: vec![
                ScheduleEvent {
                    at_word: 100,
                    action: ScheduleAction::Activate {
                        id: 0,
                        hop: 1,
                        spec: FaultSpec::StuckAt {
                            wire: 2,
                            value: true,
                        },
                    },
                },
                ScheduleEvent {
                    at_word: 300,
                    action: ScheduleAction::Deactivate { id: 0 },
                },
            ],
        };
        let mut cfg = base_case(Scheme::Uncoded, schedule);
        cfg.eps = 0.0;
        cfg.protocol = Protocol::Fec;
        let out = run_case(&cfg);
        assert_eq!(out.violations, vec![], "honest aliasing only");
        let hop1 = &out.report.per_hop[1];
        assert!(
            hop1.residual_errors > 50 && hop1.residual_errors <= 200,
            "damage confined to the 200-word window: {}",
            hop1.residual_errors
        );
        assert_eq!(out.report.per_hop[0].residual_errors, 0);
    }

    /// Telemetry pass-through: `run_case_with` an enabled recorder must
    /// produce the identical outcome as `run_case`, while the recorder
    /// picks up monitor verdicts and schedule events.
    #[test]
    fn traced_case_matches_plain_and_records() {
        use socbus_telemetry::Recorder;
        use std::rc::Rc;
        let params = ScheduleParams {
            words: 1_000,
            hops: 3,
            wires: Scheme::Dap.build(16).wires(),
        };
        let schedule = FaultSchedule::random(ScheduleFamily::MixedMayhem, &params, 9);
        let cfg = base_case(Scheme::Dap, schedule);
        let plain = run_case(&cfg);
        let recorder = Rc::new(Recorder::new());
        let traced = run_case_with(&cfg, Telemetry::from_recorder(&recorder));
        assert_eq!(plain.report, traced.report, "telemetry must not perturb");
        assert_eq!(plain.violations, traced.violations);
        let checks: u64 = InvariantKind::all()
            .iter()
            .map(|k| recorder.counter_value("monitor.checks", &[("invariant", k.name())]))
            .sum();
        let expect: u64 = traced.stats.iter().map(|(_, s)| s.checked).sum();
        assert_eq!(checks, expect, "every verdict is counted");
        assert_eq!(
            recorder.counter_value("link.words", &[("scheme", "DAP"), ("hop", "0")]),
            cfg.words,
            "hop 0 engine reports on its own track"
        );
    }

    #[test]
    fn controlled_case_keeps_the_safe_state_under_every_family() {
        use socbus_noc::OperatingPoint;
        let policy = ControlPolicy {
            points: vec![
                OperatingPoint {
                    swing: 1.25,
                    scheme: Scheme::ExtHamming,
                },
                OperatingPoint {
                    swing: 1.0,
                    scheme: Scheme::ExtHamming,
                },
                OperatingPoint {
                    swing: 0.85,
                    scheme: Scheme::ExtHamming,
                },
            ],
            target_wer: 1e-2,
            window: 50,
            dwell: 2,
            lower_trouble: 0.05,
            raise_trouble: 0.2,
            storm_trouble: 0.4,
        };
        let wires = Scheme::ExtHamming.build(16).wires();
        let mut saw_transitions = false;
        for family in ScheduleFamily::all() {
            let params = ScheduleParams {
                words: 1_500,
                hops: 3,
                wires,
            };
            let schedule = FaultSchedule::random(family, &params, 5);
            let mut cfg = base_case(Scheme::ExtHamming, schedule);
            cfg.controller = Some(policy.clone());
            let out = run_case(&cfg);
            assert_eq!(
                out.violations,
                vec![],
                "{family:?} must not break the safe state: {:?}",
                out.violations.first()
            );
            let (kind, stats) = out.stats[4];
            assert_eq!(kind, InvariantKind::ControlSafeState);
            assert_eq!(stats.checked, 3, "one safe-state audit per hop");
            saw_transitions |= out.report.per_hop.iter().any(|l| !l.control.is_empty());
        }
        assert!(
            saw_transitions,
            "at least one family must drive the controller off its start point"
        );
    }

    #[test]
    fn unknown_deactivate_is_a_no_op() {
        let schedule = FaultSchedule {
            events: vec![ScheduleEvent {
                at_word: 10,
                action: ScheduleAction::Deactivate { id: 99 },
            }],
        };
        let cfg = base_case(Scheme::Dap, schedule);
        let clean = base_case(Scheme::Dap, FaultSchedule::default());
        assert_eq!(run_case(&cfg).report, run_case(&clean).report);
    }
}
