//! The soak campaign on the deterministic parallel engine.
//!
//! The campaign grid — every catalog scheme × every schedule family —
//! is a *static shard list*: one cell is one shard, named and seeded by
//! its grid position alone. Worker threads claim cells from the engine's
//! atomic queue, each cell constructs its own `PathSim` (and, when
//! tracing, its own private [`Recorder`]) *inside* the shard, and the
//! outcomes merge in grid order. The rendered JSON is therefore
//! byte-identical for `--threads 1` and `--threads N` — the property CI
//! pins by running the bins at both and `cmp`-ing.
//!
//! This module is the single implementation behind both entry points:
//! `cargo run --bin soak` and `cargo run --bin chaos -- run`.

use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;

use socbus_codes::Scheme;
use socbus_exec::{default_threads, parse_threads, run_shards};
use socbus_telemetry::{HealthAggregator, HealthConfig, HealthReport, Recorder, Telemetry};

use crate::cli::{build_case, build_control_case, write_repro, DEFAULT_DATA_BITS};
use crate::monitor::InvariantKind;
use crate::runner::{run_case, run_case_with, CaseOutcome};
use crate::schedule::ScheduleFamily;

/// Words per case in the default campaign.
pub const FULL_WORDS: u64 = 2_000;
/// Words per case in the `--smoke` campaign (CI).
pub const SMOKE_WORDS: u64 = 300;
/// Hops per case.
pub const HOPS: usize = 3;

/// Formats an `f64` for the JSON output (same convention as the
/// reliability sweep: fixed-precision exponential, deterministic).
fn num(x: f64) -> String {
    if x == 0.0 {
        "0.0".to_owned()
    } else {
        format!("{x:.6e}")
    }
}

/// The static shard list: one campaign cell per (scheme, family) grid
/// position, seeded deterministically from that position.
#[must_use]
pub fn campaign_cells(words: u64) -> Vec<(Scheme, ScheduleFamily, u64)> {
    let mut cells = Vec::new();
    for (si, scheme) in Scheme::catalog().into_iter().enumerate() {
        for (fi, family) in ScheduleFamily::all().into_iter().enumerate() {
            // The seed fixes the schedule AND the protocol flavour
            // (correcting schemes alternate FEC / backoff-ARQ by parity).
            let seed = (si * ScheduleFamily::all().len() + fi) as u64 + 1;
            cells.push((scheme, family, seed));
        }
    }
    debug_assert!(words > 0);
    cells
}

/// Runs the whole campaign single-threaded, untraced — the legacy entry
/// point; exactly [`run_campaign_parallel`] with one thread.
#[must_use]
pub fn run_campaign(words: u64) -> Vec<(String, CaseOutcome)> {
    run_campaign_parallel(words, 1)
}

/// Runs the whole campaign on up to `threads` workers, cell outcomes
/// returned in grid order — identical to the single-threaded run for
/// every thread count (cells are independent and self-seeded; the merge
/// order is the grid order).
#[must_use]
pub fn run_campaign_parallel(words: u64, threads: usize) -> Vec<(String, CaseOutcome)> {
    let cells = campaign_cells(words);
    run_shards(threads, &cells, |_, &(scheme, family, seed)| {
        let cfg = build_case(scheme, family, seed, words, HOPS);
        (cfg.name.clone(), run_case(&cfg))
    })
}

/// Runs the campaign *sequentially* with one shared telemetry handle —
/// the overhead-gate hook (`bench --bin overhead` times every
/// instrumentation site dispatching into a single sink, which is
/// inherently a one-thread measurement). Parallel runs use
/// [`run_campaign_traced`] instead; its merged recording matches this
/// one's.
#[must_use]
pub fn run_campaign_with(words: u64, tel: Telemetry) -> Vec<(String, CaseOutcome)> {
    campaign_cells(words)
        .into_iter()
        .map(|(scheme, family, seed)| {
            let cfg = build_case(scheme, family, seed, words, HOPS);
            let name = cfg.name.clone();
            (name, run_case_with(&cfg, tel.clone()))
        })
        .collect()
}

/// [`run_campaign_parallel`] with telemetry: every cell records into a
/// **private, shard-constructed** [`Recorder`] (the `Rc`-based
/// [`Telemetry`] handles never cross threads), and the per-cell
/// recordings are absorbed into one combined recorder in grid order at
/// merge time. The combined recording — and the outcomes — are
/// byte-identical for every thread count, and match what a sequential
/// run sharing a single recorder would have produced.
#[must_use]
pub fn run_campaign_traced(words: u64, threads: usize) -> (Vec<(String, CaseOutcome)>, Recorder) {
    let cells = campaign_cells(words);
    let sharded = run_shards(threads, &cells, |_, &(scheme, family, seed)| {
        let cfg = build_case(scheme, family, seed, words, HOPS);
        let name = cfg.name.clone();
        let rec = Rc::new(Recorder::new());
        let out = run_case_with(&cfg, Telemetry::from_recorder(&rec));
        // The run dropped every Telemetry clone with the sims, so the
        // recorder has a single owner again and can cross back Send-ly.
        let rec = Rc::try_unwrap(rec)
            .ok()
            .expect("run_case_with released every telemetry handle");
        (name, out, rec)
    });
    let combined = Recorder::new();
    let outcomes = sharded
        .into_iter()
        .map(|(name, out, rec)| {
            combined.absorb(&rec);
            (name, out)
        })
        .collect();
    (outcomes, combined)
}

/// [`run_campaign_traced`] with the health monitor folded over every
/// cell's private stream: one incident-report scope per cell, pushed in
/// grid order, so the `socbus-incident v1` document is byte-identical
/// for every thread count.
#[must_use]
pub fn run_campaign_health(
    words: u64,
    threads: usize,
    health_cfg: &HealthConfig,
) -> (Vec<(String, CaseOutcome)>, HealthReport, Recorder) {
    let cells = campaign_cells(words);
    let sharded = run_shards(threads, &cells, |_, &(scheme, family, seed)| {
        let cfg = build_case(scheme, family, seed, words, HOPS);
        let name = cfg.name.clone();
        let rec = Rc::new(Recorder::new());
        let out = run_case_with(&cfg, Telemetry::from_recorder(&rec));
        let scope = HealthAggregator::scope_from_recorder(&name, health_cfg, &rec);
        let rec = Rc::try_unwrap(rec)
            .ok()
            .expect("run_case_with released every telemetry handle");
        (name, out, scope, rec)
    });
    let combined = Recorder::new();
    let mut health = HealthReport::new();
    let outcomes = sharded
        .into_iter()
        .map(|(name, out, scope, rec)| {
            combined.absorb(&rec);
            health.push_scope(scope);
            (name, out)
        })
        .collect();
    (outcomes, health, combined)
}

/// Renders the campaign JSON.
#[must_use]
pub fn render_json(words: u64, outcomes: &[(String, CaseOutcome)]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"data_bits\": {DEFAULT_DATA_BITS},");
    let _ = writeln!(json, "  \"hops\": {HOPS},");
    let _ = writeln!(json, "  \"words_per_case\": {words},");
    json.push_str("  \"cases\": [\n");
    let mut first = true;
    for (name, out) in outcomes {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let retransmits: u64 = out.report.per_hop.iter().map(|h| h.retransmits).sum();
        let transitions: usize = out.report.per_hop.iter().map(|h| h.transitions.len()).sum();
        json.push_str("    {");
        let _ = write!(json, "\"case\": \"{name}\", ");
        let _ = write!(json, "\"violations\": {}, ", out.violations.len());
        let _ = write!(json, "\"worst_word_cycles\": {}, ", out.worst_word_cycles);
        let _ = write!(json, "\"budget_cycles\": {}, ", out.budget_cycles);
        let _ = write!(json, "\"e2e_errors\": {}, ", out.report.end_to_end_errors);
        let control: usize = out.report.per_hop.iter().map(|h| h.control.len()).sum();
        let _ = write!(json, "\"retransmits\": {retransmits}, ");
        let _ = write!(json, "\"transitions\": {transitions}, ");
        let _ = write!(json, "\"control_transitions\": {control}, ");
        let _ = write!(
            json,
            "\"cycles_per_word\": {}",
            num(out.report.cycles_per_word())
        );
        json.push('}');
    }
    json.push_str("\n  ],\n");
    json.push_str("  \"invariants\": {\n");
    let mut first = true;
    for kind in InvariantKind::all() {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let (checked, violated) = outcomes
            .iter()
            .flat_map(|(_, out)| out.stats.iter())
            .filter(|(k, _)| *k == kind)
            .fold((0u64, 0u64), |(c, v), (_, s)| {
                (c + s.checked, v + s.violated)
            });
        let _ = write!(
            json,
            "    \"{}\": {{\"checked\": {checked}, \"violated\": {violated}}}",
            kind.name()
        );
    }
    json.push_str("\n  },\n");
    let worst = outcomes
        .iter()
        .map(|(_, out)| out.worst_word_cycles)
        .max()
        .unwrap_or(0);
    let violations: usize = outcomes.iter().map(|(_, out)| out.violations.len()).sum();
    let _ = writeln!(json, "  \"worst_word_cycles\": {worst},");
    let _ = writeln!(json, "  \"violations\": {violations}");
    json.push_str("}\n");
    json
}

/// The campaign entry point shared by `soak` and `chaos run`.
/// Args: `[--smoke] [--threads N] [--trace-out <path>]
/// [--health-out <path>] [out_path]`.
/// Returns the process exit code (nonzero iff any invariant violated).
#[must_use]
pub fn campaign_main(args: &[String]) -> i32 {
    let mut smoke = false;
    let mut threads = default_threads();
    let mut trace_out: Option<String> = None;
    let mut health_out: Option<String> = None;
    let mut out_path = "results/BENCH_soak.json".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                let Some(n) = it.next().and_then(|v| parse_threads(v)) else {
                    eprintln!("soak: --threads needs a positive integer");
                    return 2;
                };
                threads = n;
            }
            "--trace-out" => {
                let Some(path) = it.next() else {
                    eprintln!("soak: --trace-out needs a path");
                    return 2;
                };
                trace_out = Some(path.clone());
            }
            "--health-out" => {
                let Some(path) = it.next() else {
                    eprintln!("soak: --health-out needs a path");
                    return 2;
                };
                health_out = Some(path.clone());
            }
            other if other.starts_with("--") => {
                eprintln!("soak: unknown flag {other}");
                return 2;
            }
            other => out_path = other.to_owned(),
        }
    }
    let words = if smoke { SMOKE_WORDS } else { FULL_WORDS };
    let started = std::time::Instant::now();
    let (outcomes, health, recorder) = if health_out.is_some() {
        let (outcomes, health, rec) = run_campaign_health(words, threads, &HealthConfig::default());
        (outcomes, Some(health), Some(rec))
    } else if trace_out.is_some() {
        let (outcomes, rec) = run_campaign_traced(words, threads);
        (outcomes, None, Some(rec))
    } else {
        (run_campaign_parallel(words, threads), None, None)
    };
    let wall = started.elapsed();
    for (name, out) in &outcomes {
        eprintln!(
            "{name:<26} latency {:>3}/{:<3}  e2e {:>4}  violations {}",
            out.worst_word_cycles,
            out.budget_cycles,
            out.report.end_to_end_errors,
            out.violations.len()
        );
    }
    let json = render_json(words, &outcomes);
    if let Some(dir) = Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write soak output");
    if let (Some(path), Some(health)) = (&health_out, &health) {
        if let Some(dir) = Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create health directory");
            }
        }
        std::fs::write(path, health.serialize()).expect("write incident report");
        let incidents: usize = health.scopes.iter().map(|s| s.incidents.len()).sum();
        let alerts: usize = health.scopes.iter().map(|s| s.alerts.len()).sum();
        eprintln!(
            "soak: incidents -> {path} ({} scope(s), {incidents} incident(s), {alerts} alert(s))",
            health.scopes.len()
        );
    }
    if let (Some(path), Some(rec)) = (&trace_out, &recorder) {
        if let Some(dir) = Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create trace directory");
            }
        }
        std::fs::write(path, rec.export_jsonl()).expect("write telemetry JSONL");
        let perfetto = format!("{path}.trace.json");
        let counters = health
            .as_ref()
            .map(HealthReport::counter_samples)
            .unwrap_or_default();
        std::fs::write(&perfetto, rec.export_chrome_trace_with_counters(&counters))
            .expect("write Perfetto trace");
        let stats = rec.ring_stats();
        eprintln!(
            "soak: telemetry -> {path} + {perfetto} ({} recorded, {} dropped)",
            stats.recorded, stats.dropped
        );
        if let Some(warning) = stats.overflow_warning() {
            eprintln!("soak: {warning}");
        }
    }
    let violations: usize = outcomes.iter().map(|(_, out)| out.violations.len()).sum();
    eprintln!(
        "soak: {} cases x {words} words on {threads} thread(s) in {:.2}s -> {out_path} ({violations} violation(s))",
        outcomes.len(),
        wall.as_secs_f64()
    );
    if violations == 0 {
        return 0;
    }
    // Shrink the first violating cell to a reproducer for the artifact,
    // then replay the shrunken case under telemetry so a Perfetto trace
    // of the minimal failure lands next to it.
    for ((scheme, family, seed), (name, out)) in campaign_cells(words).into_iter().zip(&outcomes) {
        if let Some(v) = out.violations.first() {
            eprintln!("soak: {name} violated: {}", v.detail);
            let cfg = build_case(scheme, family, seed, words, HOPS);
            match write_repro(&cfg, v, Path::new("results/repro")) {
                Ok(file) => {
                    eprintln!("soak: reproducer written to {}", file.display());
                    let rec = Rc::new(Recorder::new());
                    let replayed = std::fs::read_to_string(&file).ok().and_then(|text| {
                        crate::cli::replay_text_with(&text, Telemetry::from_recorder(&rec)).ok()
                    });
                    if replayed.is_some() {
                        let trace = format!("{}.trace.json", file.display());
                        std::fs::write(&trace, rec.export_chrome_trace())
                            .expect("write repro trace");
                        eprintln!("soak: trace written to {trace}");
                    }
                }
                Err(e) => eprintln!("soak: shrink failed: {e}"),
            }
            break;
        }
    }
    1
}

/// The closed-loop controller campaign grid: every detecting scheme in
/// the catalog × every schedule family, seeded by grid position (the
/// non-detecting schemes give the controller no trouble signal and are
/// exercised by the soak campaign instead).
#[must_use]
pub fn control_cells() -> Vec<(Scheme, ScheduleFamily, u64)> {
    let mut cells = Vec::new();
    for (si, scheme) in Scheme::detecting().into_iter().enumerate() {
        for (fi, family) in ScheduleFamily::all().into_iter().enumerate() {
            let seed = (si * ScheduleFamily::all().len() + fi) as u64 + 1;
            cells.push((scheme, family, seed));
        }
    }
    cells
}

/// The `--smoke` subset of [`control_cells`]: one cell per schedule
/// family (each with a different detecting scheme), so CI covers all
/// four fault families without running the full grid.
#[must_use]
pub fn control_smoke_cells() -> Vec<(Scheme, ScheduleFamily, u64)> {
    let schemes = Scheme::detecting();
    let families = ScheduleFamily::all();
    families
        .into_iter()
        .enumerate()
        .map(|(fi, family)| {
            let si = fi % schemes.len();
            let seed = (si * families.len() + fi) as u64 + 1;
            (schemes[si], family, seed)
        })
        .collect()
}

/// Runs the controller campaign over an explicit cell list on up to
/// `threads` workers; outcomes merge in grid order, so the rendered
/// JSON is byte-identical for every thread count.
#[must_use]
pub fn run_control_parallel(
    cells: &[(Scheme, ScheduleFamily, u64)],
    words: u64,
    threads: usize,
) -> Vec<(String, CaseOutcome)> {
    run_shards(threads, cells, |_, &(scheme, family, seed)| {
        let cfg = build_control_case(scheme, family, seed, words, HOPS);
        (cfg.name.clone(), run_case(&cfg))
    })
}

/// [`run_control_parallel`] with per-cell private recorders merged in
/// grid order (same discipline as [`run_campaign_traced`]).
#[must_use]
pub fn run_control_traced(
    cells: &[(Scheme, ScheduleFamily, u64)],
    words: u64,
    threads: usize,
) -> (Vec<(String, CaseOutcome)>, Recorder) {
    let sharded = run_shards(threads, cells, |_, &(scheme, family, seed)| {
        let cfg = build_control_case(scheme, family, seed, words, HOPS);
        let name = cfg.name.clone();
        let rec = Rc::new(Recorder::new());
        let out = run_case_with(&cfg, Telemetry::from_recorder(&rec));
        let rec = Rc::try_unwrap(rec)
            .ok()
            .expect("run_case_with released every telemetry handle");
        (name, out, rec)
    });
    let combined = Recorder::new();
    let outcomes = sharded
        .into_iter()
        .map(|(name, out, rec)| {
            combined.absorb(&rec);
            (name, out)
        })
        .collect();
    (outcomes, combined)
}

/// [`run_control_traced`] with per-cell health scopes (same discipline
/// as [`run_campaign_health`]).
#[must_use]
pub fn run_control_health(
    cells: &[(Scheme, ScheduleFamily, u64)],
    words: u64,
    threads: usize,
    health_cfg: &HealthConfig,
) -> (Vec<(String, CaseOutcome)>, HealthReport, Recorder) {
    let sharded = run_shards(threads, cells, |_, &(scheme, family, seed)| {
        let cfg = build_control_case(scheme, family, seed, words, HOPS);
        let name = cfg.name.clone();
        let rec = Rc::new(Recorder::new());
        let out = run_case_with(&cfg, Telemetry::from_recorder(&rec));
        let scope = HealthAggregator::scope_from_recorder(&name, health_cfg, &rec);
        let rec = Rc::try_unwrap(rec)
            .ok()
            .expect("run_case_with released every telemetry handle");
        (name, out, scope, rec)
    });
    let combined = Recorder::new();
    let mut health = HealthReport::new();
    let outcomes = sharded
        .into_iter()
        .map(|(name, out, scope, rec)| {
            combined.absorb(&rec);
            health.push_scope(scope);
            (name, out)
        })
        .collect();
    (outcomes, health, combined)
}

/// The controller campaign entry point behind `chaos control`.
/// Args: `[--smoke] [--threads N] [--trace-out <path>]
/// [--health-out <path>] [out_path]`.
/// Returns the process exit code (nonzero iff any invariant violated).
#[must_use]
pub fn control_main(args: &[String]) -> i32 {
    let mut smoke = false;
    let mut threads = default_threads();
    let mut trace_out: Option<String> = None;
    let mut health_out: Option<String> = None;
    let mut out_path = "results/BENCH_control.json".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                let Some(n) = it.next().and_then(|v| parse_threads(v)) else {
                    eprintln!("chaos control: --threads needs a positive integer");
                    return 2;
                };
                threads = n;
            }
            "--trace-out" => {
                let Some(path) = it.next() else {
                    eprintln!("chaos control: --trace-out needs a path");
                    return 2;
                };
                trace_out = Some(path.clone());
            }
            "--health-out" => {
                let Some(path) = it.next() else {
                    eprintln!("chaos control: --health-out needs a path");
                    return 2;
                };
                health_out = Some(path.clone());
            }
            other if other.starts_with("--") => {
                eprintln!("chaos control: unknown flag {other}");
                return 2;
            }
            other => out_path = other.to_owned(),
        }
    }
    let (cells, words) = if smoke {
        (control_smoke_cells(), SMOKE_WORDS)
    } else {
        (control_cells(), FULL_WORDS)
    };
    let started = std::time::Instant::now();
    let (outcomes, health, recorder) = if health_out.is_some() {
        let (outcomes, health, rec) =
            run_control_health(&cells, words, threads, &HealthConfig::default());
        (outcomes, Some(health), Some(rec))
    } else if trace_out.is_some() {
        let (outcomes, rec) = run_control_traced(&cells, words, threads);
        (outcomes, None, Some(rec))
    } else {
        (run_control_parallel(&cells, words, threads), None, None)
    };
    let wall = started.elapsed();
    for (name, out) in &outcomes {
        let control: usize = out.report.per_hop.iter().map(|h| h.control.len()).sum();
        eprintln!(
            "{name:<30} latency {:>3}/{:<3}  e2e {:>4}  control {:>3}  violations {}",
            out.worst_word_cycles,
            out.budget_cycles,
            out.report.end_to_end_errors,
            control,
            out.violations.len()
        );
    }
    let json = render_json(words, &outcomes);
    if let Some(dir) = Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write control output");
    if let (Some(path), Some(health)) = (&health_out, &health) {
        if let Some(dir) = Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create health directory");
            }
        }
        std::fs::write(path, health.serialize()).expect("write incident report");
        let incidents: usize = health.scopes.iter().map(|s| s.incidents.len()).sum();
        let alerts: usize = health.scopes.iter().map(|s| s.alerts.len()).sum();
        eprintln!(
            "chaos control: incidents -> {path} ({} scope(s), {incidents} incident(s), \
             {alerts} alert(s))",
            health.scopes.len()
        );
    }
    if let (Some(path), Some(rec)) = (&trace_out, &recorder) {
        if let Some(dir) = Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create trace directory");
            }
        }
        std::fs::write(path, rec.export_jsonl()).expect("write telemetry JSONL");
        let perfetto = format!("{path}.trace.json");
        let counters = health
            .as_ref()
            .map(HealthReport::counter_samples)
            .unwrap_or_default();
        std::fs::write(&perfetto, rec.export_chrome_trace_with_counters(&counters))
            .expect("write Perfetto trace");
        let stats = rec.ring_stats();
        eprintln!(
            "chaos control: telemetry -> {path} + {perfetto} ({} recorded, {} dropped)",
            stats.recorded, stats.dropped
        );
        if let Some(warning) = stats.overflow_warning() {
            eprintln!("chaos control: {warning}");
        }
    }
    let violations: usize = outcomes.iter().map(|(_, out)| out.violations.len()).sum();
    eprintln!(
        "chaos control: {} cases x {words} words on {threads} thread(s) in {:.2}s -> {out_path} ({violations} violation(s))",
        outcomes.len(),
        wall.as_secs_f64()
    );
    if violations == 0 {
        return 0;
    }
    // Same artifact discipline as the soak campaign: shrink the first
    // violating cell to a reproducer, then replay it under telemetry.
    for (&(scheme, family, seed), (name, out)) in cells.iter().zip(&outcomes) {
        if let Some(v) = out.violations.first() {
            eprintln!("chaos control: {name} violated: {}", v.detail);
            let cfg = build_control_case(scheme, family, seed, words, HOPS);
            match write_repro(&cfg, v, Path::new("results/repro")) {
                Ok(file) => {
                    eprintln!("chaos control: reproducer written to {}", file.display());
                    let rec = Rc::new(Recorder::new());
                    let replayed = std::fs::read_to_string(&file).ok().and_then(|text| {
                        crate::cli::replay_text_with(&text, Telemetry::from_recorder(&rec)).ok()
                    });
                    if replayed.is_some() {
                        let trace = format!("{}.trace.json", file.display());
                        std::fs::write(&trace, rec.export_chrome_trace())
                            .expect("write repro trace");
                        eprintln!("chaos control: trace written to {trace}");
                    }
                }
                Err(e) => eprintln!("chaos control: shrink failed: {e}"),
            }
            break;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Campaign shards cross threads: the cell descriptor and the cell
    /// outcome must both be `Send` (the sims themselves are
    /// shard-constructed and never cross).
    #[test]
    fn campaign_shard_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<(Scheme, ScheduleFamily, u64)>();
        assert_send::<(String, CaseOutcome)>();
    }

    /// The tentpole property at campaign level: outcomes and rendered
    /// JSON are identical across thread counts.
    #[test]
    fn campaign_json_is_thread_count_invariant() {
        let one = run_campaign_parallel(SMOKE_WORDS, 1);
        let many = run_campaign_parallel(SMOKE_WORDS, 8);
        assert_eq!(
            render_json(SMOKE_WORDS, &one),
            render_json(SMOKE_WORDS, &many)
        );
    }

    /// Traced campaign: identical outcomes, and the merged recording is
    /// itself thread-count invariant (export byte-compare).
    #[test]
    fn traced_campaign_is_thread_count_invariant_and_matches_untraced() {
        let plain = run_campaign_parallel(SMOKE_WORDS, 2);
        let (traced_one, rec_one) = run_campaign_traced(SMOKE_WORDS, 1);
        let (traced_many, rec_many) = run_campaign_traced(SMOKE_WORDS, 8);
        for ((pn, po), (tn, to)) in plain.iter().zip(&traced_one) {
            assert_eq!(pn, tn);
            assert_eq!(po.report, to.report, "{pn}: telemetry must not perturb");
            assert_eq!(po.violations, to.violations);
        }
        assert_eq!(
            traced_one
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            traced_many
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
        );
        assert_eq!(rec_one.export_jsonl(), rec_many.export_jsonl());
        assert_eq!(
            rec_one.export_chrome_trace(),
            rec_many.export_chrome_trace()
        );
    }

    /// The control campaign: byte-identical JSON across thread counts,
    /// full detecting-scheme coverage, and zero safe-state violations in
    /// the smoke grid.
    #[test]
    fn control_campaign_is_thread_count_invariant_and_safe() {
        let cells = control_smoke_cells();
        assert_eq!(cells.len(), ScheduleFamily::all().len());
        let one = run_control_parallel(&cells, SMOKE_WORDS, 1);
        let many = run_control_parallel(&cells, SMOKE_WORDS, 8);
        assert_eq!(
            render_json(SMOKE_WORDS, &one),
            render_json(SMOKE_WORDS, &many)
        );
        for (name, out) in &one {
            assert_eq!(
                out.violations,
                vec![],
                "{name} must hold every invariant: {:?}",
                out.violations.first()
            );
        }
        let full = control_cells();
        assert_eq!(
            full.len(),
            Scheme::detecting().len() * ScheduleFamily::all().len()
        );
        for &(scheme, ..) in &full {
            assert!(scheme.detects_errors());
        }
    }

    /// ISSUE 4 satellite: every catalog scheme (the sabotage self-test
    /// scheme stays excluded) appears in the soak campaign cell list, so
    /// a newly cataloged scheme cannot silently skip the soak matrix.
    #[test]
    fn campaign_covers_every_catalog_scheme() {
        let cells = campaign_cells(SMOKE_WORDS);
        for scheme in Scheme::catalog() {
            assert!(
                ScheduleFamily::all()
                    .iter()
                    .all(|family| cells.iter().any(|&(s, f, _)| s == scheme && f == *family)),
                "{} missing from the soak campaign",
                scheme.name()
            );
        }
        assert!(
            cells.iter().all(|&(s, _, _)| s != Scheme::Sabotaged),
            "the planted-fault scheme must stay out of the campaign"
        );
        assert_eq!(
            cells.len(),
            Scheme::catalog().len() * ScheduleFamily::all().len()
        );
    }
}
