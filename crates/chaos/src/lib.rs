//! # socbus-chaos — chaos/soak harness for the NoC stack
//!
//! Randomized, *seeded* fault schedules driven against multi-hop coded
//! paths, with online invariant monitors watching every word, and
//! delta-debugging shrinkers that reduce any violating schedule to a
//! minimal, byte-identically replayable reproducer file.
//!
//! The paper (Sridhara & Shanbhag, DAC 2004) analyses each coding scheme
//! under a single stationary fault process; a real SoC interconnect sees
//! *sequences* of fault regimes — burst trains, droop storms, hard
//! defects that appear and heal, degradation ladders firing mid-flight.
//! This crate soak-tests the whole stack under such sequences and holds
//! it to five invariants no schedule may break:
//!
//! * **silent-corruption** — no wrong word delivered inside a decoder's
//!   advertised detection/correction guarantees;
//! * **conservation** — the fault ledger, report counters, and path
//!   aggregates must all re-derive from the per-word traces;
//! * **latency-bound** — no word exceeds
//!   [`Protocol::worst_case_word_cycles`](socbus_noc::link::Protocol::worst_case_word_cycles);
//! * **ladder-monotonic** — degradation transitions walk the configured
//!   ladder one justified rung at a time, demotions in order and
//!   promotions only undoing the most recent rung after a quiet window;
//! * **control-safe-state** — a closed-loop DVS controller never
//!   selects an operating point whose advertised guarantee is below the
//!   observed error weight, and every transition is justified by its
//!   window's trouble rate (see [`socbus_noc::control`]).
//!
//! The mesh campaign ([`mesh`]) extends the same discipline from a
//! single path to the whole 2D fabric ([`socbus_noc::mesh`]), with four
//! invariants of its own:
//!
//! * **packet-conservation** — injected = delivered plus flagged lost,
//!   exactly once, never silently;
//! * **reroute-delivers** — a single permanent link failure must not
//!   lose anything;
//! * **bounded-progress** — every forward strictly approaches the
//!   destination over the live topology, and the mesh drains to idle;
//! * **mesh-silent-corruption** — the per-link guarantee scoping of
//!   the path rule.
//!
//! Module map: [`schedule`] (the event grammar and random families),
//! [`runner`] (schedule interpreter over [`socbus_noc::PathSim`]),
//! [`monitor`] (the invariants), [`shrink`] (ddmin + word truncation),
//! [`replay`] (the `socbus-chaos-repro v1` file format), [`mesh`] (the
//! mesh campaign: families, invariants, `socbus-mesh-repro v1`),
//! [`cli`] (the `chaos` binary's entry point).
//!
//! The harness self-test is [`socbus_codes::SabotagedHamming`] (scheme
//! name `Sabotaged`): a decoder that deliberately mis-corrects while
//! reporting `Clean`. Soaking it must — and does — produce a
//! silent-corruption violation whose shrunken reproducer replays.
//!
//! # Example
//!
//! ```
//! use socbus_chaos::schedule::{FaultSchedule, ScheduleFamily, ScheduleParams};
//! use socbus_chaos::{build_case, run_case};
//! use socbus_codes::Scheme;
//!
//! let cfg = build_case(Scheme::Dap, ScheduleFamily::BurstTrain, 7, 400, 3);
//! let out = run_case(&cfg);
//! assert!(out.violations.is_empty(), "DAP must survive a burst train");
//! assert!(out.worst_word_cycles <= out.budget_cycles);
//! ```

pub mod campaign;
pub mod cli;
pub mod mesh;
pub mod monitor;
pub mod replay;
pub mod runner;
pub mod schedule;
pub mod shrink;

pub use campaign::{
    campaign_cells, control_cells, control_smoke_cells, run_campaign, run_campaign_parallel,
    run_campaign_traced, run_campaign_with, run_control_parallel, run_control_traced, FULL_WORDS,
    HOPS, SMOKE_WORDS,
};
pub use cli::{
    build_case, build_control_case, control_policy_for, main_with_args, protocol_for, write_repro,
};
pub use mesh::{
    build_mesh_case, mesh_cells, mesh_smoke_cells, mesh_topology, replay_mesh_text,
    run_mesh_campaign_parallel, run_mesh_campaign_traced, run_mesh_case, run_mesh_case_with,
    shrink_mesh, write_mesh_repro, MeshCaseConfig, MeshCaseOutcome, MeshFamily, MeshInvariant,
    MeshMonitor, MeshRepro, MeshSchedule, MeshViolation,
};
pub use monitor::{InvariantKind, InvariantStats, Monitor, Violation};
pub use replay::{ExpectedViolation, Repro};
pub use runner::{reproduces, run_case, run_case_with, CaseConfig, CaseOutcome};
pub use schedule::{FaultSchedule, ScheduleAction, ScheduleEvent, ScheduleFamily, ScheduleParams};
pub use shrink::{shrink, ShrinkReport};
