//! Mesh chaos campaign: fault schedules against the 2D-mesh NoC.
//!
//! The link-level campaign ([`crate::campaign`]) soaks a single
//! multi-hop path; this module soaks the whole fabric. A mesh case runs
//! a [`MeshSim`] for a fixed number of injection cycles plus a drain
//! phase, while a cycle-domain fault schedule activates link faults and
//! takes links down/up, and a [`MeshMonitor`] holds the run to five
//! invariants no schedule may break:
//!
//! * **packet-conservation** — every injected packet is delivered
//!   exactly once or flagged lost; nothing vanishes, nothing is
//!   delivered that was never injected, duplicate accepts are
//!   suppressed before the ledger.
//! * **reroute-delivers** — on cells that arm it (clean links, a single
//!   permanent link failure), the fault-aware fallback must deliver
//!   *everything*: zero flagged losses.
//! * **bounded-progress** — every forwarded copy strictly decreases the
//!   live-topology distance to its destination (no livelock, never onto
//!   a downed link), and the mesh drains to idle within the budget.
//! * **mesh-silent-corruption** — per-link scoping of the path
//!   campaign's silent-corruption rule: a hop may never hand a changed
//!   word to the next router while the injected weight was within the
//!   decoder's advertised guarantees, and may never *drop as poisoned*
//!   a word whose weight was within the correction guarantee.
//! * **health-consistent** — the online health monitor's verdicts agree
//!   with the ledger: every auto-retired link is `Down` in the incident
//!   report and blamed by an incident, and no link is reported `Down`
//!   that the simulator never retired.
//!
//! Violating cells shrink to `socbus-mesh-repro v1` files (see
//! [`MeshRepro`]) with the same byte-canonical replay discipline as the
//! path repro format.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_channel::FaultSpec;
use socbus_codes::{DecodeStatus, Scheme};
use socbus_exec::{default_threads, parse_threads, run_shards};
use socbus_noc::link::{LinkConfig, Protocol};
use socbus_noc::mesh::{
    CycleReport, EndToEnd, MeshConfig, MeshPattern, MeshReport, MeshSim, PacketKey,
};
use socbus_telemetry::{
    HealthAggregator, HealthConfig, HealthReport, Recorder, ScopeReport, Telemetry,
};

use crate::cli::{protocol_for, DEFAULT_DATA_BITS, SHRINK_BUDGET};
use crate::monitor::InvariantStats;
use crate::replay::{kv, parse_f64, parse_num, parse_protocol, parse_spec, spec_str};
use crate::runner::activation_seed;

/// Mesh side length of a campaign cell.
pub const MESH_WIDTH: usize = 3;
/// Mesh side length of a campaign cell.
pub const MESH_HEIGHT: usize = 3;
/// Injection cycles per case in the default campaign.
pub const FULL_MESH_CYCLES: u64 = 400;
/// Injection cycles per case in the `--smoke` campaign (CI).
pub const SMOKE_MESH_CYCLES: u64 = 150;
/// Drain budget after injection stops. The end-to-end worst case from
/// birth to give-up is about 3 400 cycles (nine 96-cycle timeouts plus
/// the capped exponential backoffs), so this bound is generous: a case
/// that fails to drain is livelocked, not merely slow.
pub const MESH_DRAIN_CYCLES: u64 = 6_000;
/// Per-node injection probability per cycle.
pub const MESH_RATE: f64 = 0.1;
/// Consecutive poisoned transfers before a campaign mesh retires a link.
pub const MESH_AUTO_DOWN: u32 = 8;

// ---------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------

/// A cycle-domain fault action against the mesh.
#[derive(Clone, Debug, PartialEq)]
pub enum MeshAction {
    /// Push a fault spec onto one link's injector.
    Activate {
        /// Schedule-unique id (seeds the fault's random stream, and is
        /// how a later [`MeshAction::Deactivate`] finds the slot).
        id: u32,
        /// Target directed link.
        link: usize,
        /// The fault.
        spec: FaultSpec,
    },
    /// Disable a previously activated fault (unknown ids are a no-op,
    /// so the shrinker can drop activations freely).
    Deactivate {
        /// The activation to disable.
        id: u32,
    },
    /// Mark a directed link permanently down (until a `LinkUp`).
    LinkDown {
        /// Target directed link.
        link: usize,
    },
    /// Restore a downed link.
    LinkUp {
        /// Target directed link.
        link: usize,
    },
}

/// One scheduled action.
#[derive(Clone, Debug, PartialEq)]
pub struct MeshEvent {
    /// Cycle the action fires before (0-based injection cycle).
    pub at_cycle: u64,
    /// The action.
    pub action: MeshAction,
}

/// A whole mesh schedule, kept sorted by `at_cycle` (stable, so events
/// sharing a cycle fire in insertion order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MeshSchedule {
    /// The events, in firing order.
    pub events: Vec<MeshEvent>,
}

/// The shape of a random mesh schedule draw.
#[derive(Clone, Copy, Debug)]
pub struct MeshScheduleParams {
    /// Injection cycles the schedule is drawn for.
    pub cycles: u64,
    /// Directed links available for targeting.
    pub links: usize,
    /// Wire count of the coded bus (bounds hard-fault wire indices).
    pub wires: usize,
}

/// The five families of randomized mesh schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshFamily {
    /// Gilbert–Elliott burst windows on random links.
    LinkBursts,
    /// Supply-droop windows on random links.
    DroopStorm,
    /// Stuck-at and bridging defects that appear and heal.
    HardWindow,
    /// Exactly one permanent link failure from cycle zero — the
    /// reroute-delivers cell (links otherwise clean).
    SingleLinkDown,
    /// A burst, a hard defect, and a link-down window at once.
    MixedMesh,
}

impl MeshFamily {
    /// All families, in campaign order.
    #[must_use]
    pub fn all() -> [MeshFamily; 5] {
        [
            MeshFamily::LinkBursts,
            MeshFamily::DroopStorm,
            MeshFamily::HardWindow,
            MeshFamily::SingleLinkDown,
            MeshFamily::MixedMesh,
        ]
    }

    /// Stable name (used in reports and repro files).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MeshFamily::LinkBursts => "link_bursts",
            MeshFamily::DroopStorm => "droop_storm",
            MeshFamily::HardWindow => "hard_window",
            MeshFamily::SingleLinkDown => "link_down",
            MeshFamily::MixedMesh => "mixed_mesh",
        }
    }

    /// Inverse of [`MeshFamily::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<MeshFamily> {
        MeshFamily::all().into_iter().find(|f| f.name() == name)
    }
}

/// A window `[at, at + len)` inside the injection phase, with room left
/// so the aftermath of a deactivation is still observed.
fn mesh_window(cycles: u64, rng: &mut StdRng) -> (u64, u64) {
    let cycles = cycles.max(4);
    let at = rng.gen_range(0..cycles * 3 / 4);
    let len = rng.gen_range(cycles / 20 + 1..=cycles / 4 + 1);
    (at, len)
}

fn push_link_bursts(
    events: &mut Vec<MeshEvent>,
    next_id: &mut u32,
    params: &MeshScheduleParams,
    rng: &mut StdRng,
    max_n: usize,
) {
    let n = rng.gen_range(1..=max_n);
    for _ in 0..n {
        let (at, len) = mesh_window(params.cycles, rng);
        let id = *next_id;
        *next_id += 1;
        events.push(MeshEvent {
            at_cycle: at,
            action: MeshAction::Activate {
                id,
                link: rng.gen_range(0..params.links),
                spec: FaultSpec::Burst {
                    eps_good: rng.gen_range(0.0..2e-3),
                    eps_bad: rng.gen_range(0.02..0.3),
                    p_enter: rng.gen_range(0.01..0.2),
                    p_exit: rng.gen_range(0.05..0.5),
                },
            },
        });
        events.push(MeshEvent {
            at_cycle: at + len,
            action: MeshAction::Deactivate { id },
        });
    }
}

fn push_link_droops(
    events: &mut Vec<MeshEvent>,
    next_id: &mut u32,
    params: &MeshScheduleParams,
    rng: &mut StdRng,
    max_n: usize,
) {
    let n = rng.gen_range(1..=max_n);
    for _ in 0..n {
        let (at, len) = mesh_window(params.cycles, rng);
        let id = *next_id;
        *next_id += 1;
        events.push(MeshEvent {
            at_cycle: at,
            action: MeshAction::Activate {
                id,
                link: rng.gen_range(0..params.links),
                spec: FaultSpec::Droop {
                    eps: rng.gen_range(1e-4..2e-3),
                    scale: rng.gen_range(30.0..300.0),
                    start: rng.gen_range(0..8u64),
                    duration: rng.gen_range(20..200u64),
                },
            },
        });
        events.push(MeshEvent {
            at_cycle: at + len,
            action: MeshAction::Deactivate { id },
        });
    }
}

fn push_link_hard_windows(
    events: &mut Vec<MeshEvent>,
    next_id: &mut u32,
    params: &MeshScheduleParams,
    rng: &mut StdRng,
    max_n: usize,
) {
    let n = rng.gen_range(1..=max_n);
    for _ in 0..n {
        let (at, len) = mesh_window(params.cycles, rng);
        let id = *next_id;
        *next_id += 1;
        let spec = if rng.gen_bool(0.5) {
            FaultSpec::StuckAt {
                wire: rng.gen_range(0..params.wires),
                value: rng.gen_bool(0.5),
            }
        } else {
            FaultSpec::Bridge {
                wire: rng.gen_range(0..params.wires.saturating_sub(1).max(1)),
                mode: if rng.gen_bool(0.5) {
                    socbus_channel::BridgeMode::And
                } else {
                    socbus_channel::BridgeMode::Or
                },
            }
        };
        events.push(MeshEvent {
            at_cycle: at,
            action: MeshAction::Activate {
                id,
                link: rng.gen_range(0..params.links),
                spec,
            },
        });
        events.push(MeshEvent {
            at_cycle: at + len,
            action: MeshAction::Deactivate { id },
        });
    }
}

fn push_link_down_window(
    events: &mut Vec<MeshEvent>,
    params: &MeshScheduleParams,
    rng: &mut StdRng,
) {
    let (at, len) = mesh_window(params.cycles, rng);
    let link = rng.gen_range(0..params.links);
    events.push(MeshEvent {
        at_cycle: at,
        action: MeshAction::LinkDown { link },
    });
    events.push(MeshEvent {
        at_cycle: at + len,
        action: MeshAction::LinkUp { link },
    });
}

impl MeshSchedule {
    /// Draws a seeded random schedule from `family`. The same
    /// `(family, params, seed)` triple always yields the same schedule.
    #[must_use]
    pub fn random(family: MeshFamily, params: &MeshScheduleParams, seed: u64) -> MeshSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut next_id = 0u32;
        match family {
            MeshFamily::LinkBursts => {
                push_link_bursts(&mut events, &mut next_id, params, &mut rng, 3);
            }
            MeshFamily::DroopStorm => {
                push_link_droops(&mut events, &mut next_id, params, &mut rng, 3);
            }
            MeshFamily::HardWindow => {
                push_link_hard_windows(&mut events, &mut next_id, params, &mut rng, 2);
            }
            MeshFamily::SingleLinkDown => {
                events.push(MeshEvent {
                    at_cycle: 0,
                    action: MeshAction::LinkDown {
                        link: rng.gen_range(0..params.links),
                    },
                });
            }
            MeshFamily::MixedMesh => {
                push_link_bursts(&mut events, &mut next_id, params, &mut rng, 1);
                push_link_hard_windows(&mut events, &mut next_id, params, &mut rng, 1);
                push_link_down_window(&mut events, params, &mut rng);
            }
        }
        let mut schedule = MeshSchedule { events };
        schedule.sort();
        schedule
    }

    /// Restores firing order after editing the event list (stable by
    /// `at_cycle`).
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| e.at_cycle);
    }
}

// ---------------------------------------------------------------------
// Invariants and the monitor
// ---------------------------------------------------------------------

/// The invariant families the mesh monitor checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshInvariant {
    /// Injected = delivered + flagged lost; no duplicates, no phantom
    /// deliveries, no silent losses after a clean drain.
    PacketConservation,
    /// Armed cells (single clean link failure) must deliver everything.
    RerouteDelivers,
    /// Every forward strictly decreases live-topology distance, never
    /// onto a downed link, and the mesh drains to idle in budget.
    BoundedProgress,
    /// Per-link guarantee scoping of delivered-changed / dropped-clean
    /// words.
    MeshSilentCorruption,
    /// The health monitor's verdicts agree with the simulator's ledger:
    /// the health report's `Down` links are exactly the auto-retired
    /// links, and every one of them is blamed by an incident — no
    /// silently downed link.
    HealthConsistent,
}

impl MeshInvariant {
    /// All kinds, in reporting order.
    #[must_use]
    pub fn all() -> [MeshInvariant; 5] {
        [
            MeshInvariant::PacketConservation,
            MeshInvariant::RerouteDelivers,
            MeshInvariant::BoundedProgress,
            MeshInvariant::MeshSilentCorruption,
            MeshInvariant::HealthConsistent,
        ]
    }

    /// Stable name (used in reports and repro files).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MeshInvariant::PacketConservation => "packet-conservation",
            MeshInvariant::RerouteDelivers => "reroute-delivers",
            MeshInvariant::BoundedProgress => "bounded-progress",
            MeshInvariant::MeshSilentCorruption => "mesh-silent-corruption",
            MeshInvariant::HealthConsistent => "health-consistent",
        }
    }

    /// Inverse of [`MeshInvariant::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<MeshInvariant> {
        MeshInvariant::all().into_iter().find(|k| k.name() == name)
    }
}

/// One observed mesh invariant violation.
#[derive(Clone, Debug, PartialEq)]
pub struct MeshViolation {
    /// Which invariant broke.
    pub kind: MeshInvariant,
    /// The link it broke on, or `None` for an end-to-end violation.
    pub link: Option<usize>,
    /// The cycle at which it broke (for end-of-run audits, the total
    /// cycle count).
    pub cycle: u64,
    /// Human-readable evidence.
    pub detail: String,
}

impl MeshViolation {
    /// The identity the shrinker preserves: a shrunken schedule
    /// reproduces iff it violates the same invariant on the same link.
    #[must_use]
    pub fn key(&self) -> (MeshInvariant, Option<usize>) {
        (self.kind, self.link)
    }
}

/// Replicates [`MeshSim`]'s directed-link enumeration: node-major, and
/// East/West/North/South per node (edges only where a neighbour
/// exists). `links[l] = (from, to)`.
#[must_use]
pub fn mesh_topology(width: usize, height: usize) -> Vec<(usize, usize)> {
    let mut links = Vec::new();
    for node in 0..width * height {
        let (x, y) = (node % width, node / width);
        if x + 1 < width {
            links.push((node, node + 1));
        }
        if x > 0 {
            links.push((node, node - 1));
        }
        if y + 1 < height {
            links.push((node, node + width));
        }
        if y > 0 {
            links.push((node, node - width));
        }
    }
    links
}

/// The online monitor for one mesh chaos case. It keeps its own shadow
/// topology (same enumeration as the simulator, independently derived)
/// and its own exactly-once ledger, so every identity in the final
/// [`MeshReport`] is re-derived rather than trusted.
pub struct MeshMonitor {
    links: Vec<(usize, usize)>,
    in_links: Vec<Vec<(usize, usize)>>,
    down: Vec<bool>,
    /// Lazily built shortest-distance tables over the live topology,
    /// one per destination; cleared whenever the down set changes.
    dist_cache: HashMap<usize, Vec<u32>>,
    expect_full_delivery: bool,
    injected: BTreeSet<PacketKey>,
    accepted: BTreeSet<PacketKey>,
    gave_up: BTreeSet<PacketKey>,
    duplicates: u64,
    /// Links the simulator auto-retired (reported via
    /// [`CycleReport::downed`]) — the ground truth the health monitor's
    /// `Down` verdicts are checked against.
    auto_downed: BTreeSet<usize>,
    violations: Vec<MeshViolation>,
    stats: [InvariantStats; 5],
    checks_flushed: [u64; 5],
    tel: Telemetry,
}

impl MeshMonitor {
    /// Builds a monitor for a `width` × `height` mesh. When
    /// `expect_full_delivery` is set the reroute-delivers invariant is
    /// armed: the run must end with zero flagged losses.
    #[must_use]
    pub fn new(width: usize, height: usize, expect_full_delivery: bool) -> Self {
        let links = mesh_topology(width, height);
        let mut in_links = vec![Vec::new(); width * height];
        for (l, &(from, to)) in links.iter().enumerate() {
            in_links[to].push((from, l));
        }
        let down = vec![false; links.len()];
        MeshMonitor {
            links,
            in_links,
            down,
            dist_cache: HashMap::new(),
            expect_full_delivery,
            injected: BTreeSet::new(),
            accepted: BTreeSet::new(),
            gave_up: BTreeSet::new(),
            duplicates: 0,
            auto_downed: BTreeSet::new(),
            violations: Vec::new(),
            stats: [InvariantStats::default(); 5],
            checks_flushed: [0; 5],
            tel: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle (same discipline as
    /// [`crate::monitor::Monitor::set_telemetry`]).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Mirrors a scheduled link state change into the shadow topology.
    /// Must be called *before* the step whose report is observed, in
    /// lockstep with [`MeshSim::set_link_down`].
    pub fn set_link_down(&mut self, link: usize, is_down: bool) {
        if self.down[link] != is_down {
            self.down[link] = is_down;
            self.dist_cache.clear();
        }
    }

    /// Live-topology hop distance from `node` to `dst` (`u32::MAX` if
    /// unreachable), from a BFS over the reverse adjacency.
    fn dist(&mut self, node: usize, dst: usize) -> u32 {
        if !self.dist_cache.contains_key(&dst) {
            let mut dist = vec![u32::MAX; self.in_links.len()];
            dist[dst] = 0;
            let mut frontier = std::collections::VecDeque::from([dst]);
            while let Some(at) = frontier.pop_front() {
                let d = dist[at];
                for &(from, link) in &self.in_links[at] {
                    if !self.down[link] && dist[from] == u32::MAX {
                        dist[from] = d + 1;
                        frontier.push_back(from);
                    }
                }
            }
            self.dist_cache.insert(dst, dist);
        }
        self.dist_cache[&dst][node]
    }

    fn check(
        &mut self,
        kind: MeshInvariant,
        link: Option<usize>,
        cycle: u64,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        let idx = MeshInvariant::all()
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in all()");
        self.stats[idx].checked += 1;
        if !ok {
            self.stats[idx].violated += 1;
            if self.tel.is_enabled() {
                let link_label = link.map_or_else(|| "e2e".to_owned(), |l| l.to_string());
                let labels = [("invariant", kind.name()), ("at_link", link_label.as_str())];
                self.tel.counter("monitor.violations", &labels, 1);
                self.tel.event("monitor.violation", &labels, cycle);
            }
            self.violations.push(MeshViolation {
                kind,
                link,
                cycle,
                detail: detail(),
            });
        }
    }

    /// Observes one simulated cycle.
    pub fn observe(&mut self, report: &CycleReport) {
        let cycle = report.cycle;
        for key in &report.injected {
            let fresh = self.injected.insert(*key);
            self.check(
                MeshInvariant::PacketConservation,
                None,
                cycle,
                fresh,
                || format!("packet {key:?} injected twice"),
            );
        }
        // Auto-retired links are reported in the same cycle their last
        // transfer happened, so the monitor's shadow tables and the
        // simulator's diverge *within* this report; distance-descent
        // checks resume next cycle, once both sides agree again.
        let topology_stable = report.downed.is_empty();
        for t in &report.transfers {
            let weight = u64::from(t.trace.max_error_weight);
            let within_correction = weight <= t.trace.correctable_errors as u64;
            let claims_clean = matches!(
                t.trace.final_status,
                DecodeStatus::Clean | DecodeStatus::Unchecked
            );
            let within_detection = weight <= t.trace.detectable_errors as u64;
            let guaranteed_exact = within_correction || (within_detection && claims_clean);
            self.check(
                MeshInvariant::MeshSilentCorruption,
                Some(t.link),
                cycle,
                t.dropped || !guaranteed_exact || t.exited == t.entered,
                || {
                    format!(
                        "link {} changed {:?} -> {:?} inside its guarantee \
                         (weight {weight}, status {:?})",
                        t.link, t.entered, t.exited, t.trace.final_status
                    )
                },
            );
            self.check(
                MeshInvariant::MeshSilentCorruption,
                Some(t.link),
                cycle,
                !t.dropped || !within_correction,
                || {
                    format!(
                        "link {} dropped {:?} as poisoned at weight {weight} \
                         within its correction guarantee",
                        t.link, t.key
                    )
                },
            );
            if topology_stable && !t.dropped {
                let (from, to) = self.links[t.link];
                let dst = t.key.dst;
                let d_from = if from == dst { 0 } else { self.dist(from, dst) };
                let d_to = if to == dst { 0 } else { self.dist(to, dst) };
                let link_down = self.down[t.link];
                self.check(
                    MeshInvariant::BoundedProgress,
                    Some(t.link),
                    cycle,
                    !link_down && d_to < d_from,
                    || {
                        format!(
                            "link {} ({from} -> {to}) does not approach {dst}: \
                             dist {d_from} -> {d_to}{}",
                            t.link,
                            if link_down { " (link is down)" } else { "" }
                        )
                    },
                );
            }
        }
        for a in &report.accepted {
            if a.duplicate {
                self.duplicates += 1;
                let seen = self.accepted.contains(&a.key);
                self.check(MeshInvariant::PacketConservation, None, cycle, seen, || {
                    format!("duplicate accept of {:?} before any accept", a.key)
                });
            } else {
                let known = self.injected.contains(&a.key);
                let fresh = self.accepted.insert(a.key);
                self.check(
                    MeshInvariant::PacketConservation,
                    None,
                    cycle,
                    known && fresh,
                    || {
                        format!(
                            "accepted {:?} {}",
                            a.key,
                            if known {
                                "twice without the duplicate flag"
                            } else {
                                "which was never injected"
                            }
                        )
                    },
                );
            }
        }
        for key in &report.gave_up {
            self.gave_up.insert(*key);
        }
        for &link in &report.downed {
            self.auto_downed.insert(link);
            self.set_link_down(link, true);
        }
    }

    /// Cross-checks the health monitor's verdicts for this run against
    /// the monitor's own ledger (the **health-consistent** invariant):
    ///
    /// * every link the simulator auto-retired must be `Down` in the
    ///   health report *and* blamed by at least one incident — a downed
    ///   link no one was paged about is a silent failure of the
    ///   observability layer;
    /// * every link the health report claims `Down` must actually have
    ///   been auto-retired — no phantom outages.
    ///
    /// Scheduled `link-down` chaos actions are invisible to telemetry
    /// by design (they model an external hard fault, not a simulator
    /// decision), so only auto-retired links participate.
    pub fn check_health_agreement(&mut self, health: &ScopeReport) {
        let cycle = health.cycles;
        let health_down: BTreeSet<String> = health
            .down_entities()
            .into_iter()
            .filter(|e| e.starts_with("link:"))
            .collect();
        let blamed: BTreeSet<String> = health.blamed_entities().into_iter().collect();
        for link in self.auto_downed.clone() {
            let name = format!("link:{link}");
            let is_down = health_down.contains(&name);
            let is_blamed = blamed.contains(&name);
            self.check(
                MeshInvariant::HealthConsistent,
                Some(link),
                cycle,
                is_down && is_blamed,
                || {
                    if is_down {
                        format!("auto-retired link {link} is Down but no incident blames it")
                    } else {
                        format!("auto-retired link {link} is not Down in the health report")
                    }
                },
            );
        }
        for name in &health_down {
            let link: Option<usize> = name.strip_prefix("link:").and_then(|s| s.parse().ok());
            let agreed = link.is_some_and(|l| self.auto_downed.contains(&l));
            self.check(MeshInvariant::HealthConsistent, link, cycle, agreed, || {
                format!("health reports {name} Down but the simulator never auto-retired it")
            });
        }
    }

    /// Audits the final report against the monitor's own ledger.
    /// `drained_clean` is whether the simulator reached idle within the
    /// drain budget.
    pub fn finish(&mut self, report: &MeshReport, drained_clean: bool) {
        let cycle = report.cycles;
        let injected = self.injected.len() as u64;
        let accepted = self.accepted.len() as u64;
        let flagged: Vec<PacketKey> = self.injected.difference(&self.accepted).copied().collect();
        let duplicates = self.duplicates;
        let counts_ok = report.injected == injected
            && report.delivered == accepted
            && report.duplicates == duplicates
            && report.flagged_lost == flagged.len() as u64
            && report.injected == report.delivered + report.flagged_lost;
        self.check(
            MeshInvariant::PacketConservation,
            None,
            cycle,
            counts_ok,
            || {
                format!(
                    "ledger mismatch: report {}/{}/{} (injected/delivered/flagged) \
                     dup {} vs derived {injected}/{accepted}/{} dup {}",
                    report.injected,
                    report.delivered,
                    report.flagged_lost,
                    report.duplicates,
                    flagged.len(),
                    duplicates
                )
            },
        );
        if drained_clean {
            // After a clean drain every undelivered packet must have
            // been *reported* lost — silence is the violation.
            for key in &flagged {
                let reported = self.gave_up.contains(key);
                let idx = MeshInvariant::all()
                    .iter()
                    .position(|k| *k == MeshInvariant::PacketConservation)
                    .expect("kind is in all()");
                self.stats[idx].checked += 1;
                if !reported {
                    self.stats[idx].violated += 1;
                    self.violations.push(MeshViolation {
                        kind: MeshInvariant::PacketConservation,
                        link: None,
                        cycle,
                        detail: format!("packet {key:?} lost silently (never flagged)"),
                    });
                }
            }
        }
        self.check(
            MeshInvariant::BoundedProgress,
            None,
            cycle,
            drained_clean,
            || {
                "mesh failed to drain to idle within the budget — livelock or stuck packet"
                    .to_owned()
            },
        );
        if self.expect_full_delivery {
            self.check(
                MeshInvariant::RerouteDelivers,
                None,
                cycle,
                report.flagged_lost == 0,
                || {
                    format!(
                        "{} packet(s) flagged lost on a cell that must reroute and deliver",
                        report.flagged_lost
                    )
                },
            );
        }
    }

    /// Reports the `monitor.checks` counters accumulated since the last
    /// flush (safe to call repeatedly; each check is reported once).
    pub fn flush_telemetry(&mut self) {
        if !self.tel.is_enabled() {
            return;
        }
        for (idx, kind) in MeshInvariant::all().iter().enumerate() {
            let delta = self.stats[idx].checked - self.checks_flushed[idx];
            if delta > 0 {
                self.tel
                    .counter("monitor.checks", &[("invariant", kind.name())], delta);
                self.checks_flushed[idx] = self.stats[idx].checked;
            }
        }
    }

    /// Pass/fail tally for one invariant kind.
    #[must_use]
    pub fn stats(&self, kind: MeshInvariant) -> InvariantStats {
        let idx = MeshInvariant::all()
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in all()");
        self.stats[idx]
    }

    /// Consumes the monitor, returning all violations.
    #[must_use]
    pub fn into_violations(self) -> Vec<MeshViolation> {
        self.violations
    }
}

// ---------------------------------------------------------------------
// Cases and the runner
// ---------------------------------------------------------------------

/// One mesh chaos case: a mesh shape, a coded-link configuration, the
/// end-to-end protocol knobs, and a fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct MeshCaseConfig {
    /// Display name.
    pub name: String,
    /// Coding scheme on every link.
    pub scheme: Scheme,
    /// Data bits per word.
    pub data_bits: usize,
    /// Mesh width.
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Baseline i.i.d. ε on every link.
    pub eps: f64,
    /// Link protocol.
    pub protocol: Protocol,
    /// Per-node injection probability per cycle.
    pub rate: f64,
    /// Traffic pattern.
    pub pattern: MeshPattern,
    /// Injection cycles.
    pub cycles: u64,
    /// Drain budget after injection stops.
    pub drain_cycles: u64,
    /// End-to-end retransmission knobs.
    pub e2e: EndToEnd,
    /// Retire a link after this many consecutive poisoned transfers.
    pub auto_down_after: Option<u32>,
    /// Arm the reroute-delivers invariant (zero flagged losses).
    pub expect_full_delivery: bool,
    /// Traffic seed.
    pub traffic_seed: u64,
    /// Sim seed.
    pub sim_seed: u64,
    /// The fault schedule.
    pub schedule: MeshSchedule,
}

impl MeshCaseConfig {
    /// Assembles the [`MeshConfig`] this case runs.
    #[must_use]
    pub fn mesh_config(&self) -> MeshConfig {
        let link =
            LinkConfig::new(self.scheme, self.data_bits, self.eps).with_protocol(self.protocol);
        let mut cfg = MeshConfig::new(self.width, self.height, link)
            .with_pattern(self.pattern)
            .with_rate(self.rate)
            .with_e2e(self.e2e);
        if let Some(n) = self.auto_down_after {
            cfg = cfg.with_auto_down(n);
        }
        cfg
    }
}

/// Everything a finished mesh case yields.
pub struct MeshCaseOutcome {
    /// Violations, in detection order.
    pub violations: Vec<MeshViolation>,
    /// The simulator's final report.
    pub report: MeshReport,
    /// Pass/fail tallies per invariant.
    pub stats: [(MeshInvariant, InvariantStats); 5],
}

fn apply_mesh_event(
    action: &MeshAction,
    sim_seed: u64,
    sim: &mut MeshSim,
    monitor: &mut MeshMonitor,
    live: &mut HashMap<u32, (usize, usize)>,
) {
    match action {
        MeshAction::Activate { id, link, spec } => {
            let engine = sim.engine_mut(*link);
            // A droop window's `start` is relative to activation: pin it
            // to this link's event clock now (same contract as the path
            // runner's droop handling).
            let spec = match *spec {
                FaultSpec::Droop {
                    eps,
                    scale,
                    start,
                    duration,
                } => FaultSpec::Droop {
                    eps,
                    scale,
                    start: engine.injector().cycles().saturating_add(start),
                    duration,
                },
                ref other => other.clone(),
            };
            let slot = engine
                .injector_mut()
                .push_spec(&spec, activation_seed(sim_seed, *id));
            let swing = engine.swing();
            if swing != 1.0 {
                engine.injector_mut().rescale_swing_slot(slot, swing);
            }
            live.insert(*id, (*link, slot));
        }
        MeshAction::Deactivate { id } => {
            // Unknown ids are a no-op by contract (shrinker-safe).
            if let Some((link, slot)) = live.remove(id) {
                sim.engine_mut(link).injector_mut().set_enabled(slot, false);
            }
        }
        MeshAction::LinkDown { link } => {
            sim.set_link_down(*link, true);
            monitor.set_link_down(*link, true);
        }
        MeshAction::LinkUp { link } => {
            sim.set_link_down(*link, false);
            monitor.set_link_down(*link, false);
        }
    }
}

/// Runs one mesh case untraced.
#[must_use]
pub fn run_mesh_case(cfg: &MeshCaseConfig) -> MeshCaseOutcome {
    run_mesh_case_with(cfg, Telemetry::off())
}

/// Drives one mesh case to completion and returns the monitor (still
/// open for post-run cross-checks) and the final report. Every
/// telemetry handle the drive created is released on return: only the
/// monitor's own handle survives.
fn drive_mesh_case(cfg: &MeshCaseConfig, tel: Telemetry) -> (MeshMonitor, MeshReport) {
    let mesh_cfg = cfg.mesh_config();
    let mut sim =
        MeshSim::new_with_telemetry(&mesh_cfg, cfg.sim_seed, cfg.traffic_seed, tel.clone());
    let mut monitor = MeshMonitor::new(cfg.width, cfg.height, cfg.expect_full_delivery);
    monitor.set_telemetry(tel);
    let mut live: HashMap<u32, (usize, usize)> = HashMap::new();
    let events = &cfg.schedule.events;
    let mut next_event = 0;
    for cycle in 0..cfg.cycles {
        // Events fire *before* the step of their cycle, mirrored into
        // the monitor's shadow topology in the same order, so both
        // sides route and audit against the same live graph.
        while next_event < events.len() && events[next_event].at_cycle <= cycle {
            apply_mesh_event(
                &events[next_event].action,
                cfg.sim_seed,
                &mut sim,
                &mut monitor,
                &mut live,
            );
            next_event += 1;
        }
        let report = sim.step(true);
        monitor.observe(&report);
    }
    let mut drained = 0;
    while !sim.idle() && drained < cfg.drain_cycles {
        let report = sim.step(false);
        monitor.observe(&report);
        drained += 1;
    }
    let drained_clean = sim.idle();
    let report = sim.finish();
    monitor.finish(&report, drained_clean);
    monitor.flush_telemetry();
    (monitor, report)
}

/// Consumes a finished monitor into the case outcome.
fn finish_outcome(monitor: MeshMonitor, report: MeshReport) -> MeshCaseOutcome {
    let stats = MeshInvariant::all().map(|k| (k, monitor.stats(k)));
    MeshCaseOutcome {
        violations: monitor.into_violations(),
        report,
        stats,
    }
}

/// Runs one mesh case with a telemetry handle wired through both the
/// simulator (per-link and per-router tracks) and the monitor.
#[must_use]
pub fn run_mesh_case_with(cfg: &MeshCaseConfig, tel: Telemetry) -> MeshCaseOutcome {
    let (monitor, report) = drive_mesh_case(cfg, tel);
    finish_outcome(monitor, report)
}

/// Runs one mesh case under a private recorder, folds the recorder's
/// stream through the health aggregator, and cross-checks the health
/// verdicts against the monitor's ledger (the **health-consistent**
/// invariant). Returns the outcome, the case's incident-report scope
/// (named after the case), and the recorder for trace export.
#[must_use]
pub fn run_mesh_case_health(
    cfg: &MeshCaseConfig,
    health_cfg: &HealthConfig,
) -> (MeshCaseOutcome, ScopeReport, Recorder) {
    let rec = Rc::new(Recorder::new());
    let (mut monitor, report) = drive_mesh_case(cfg, Telemetry::from_recorder(&rec));
    // The health pass reads the recorder *before* the agreement check
    // runs, so the scope reflects exactly what the run emitted; the
    // agreement check's own monitor.* counters land after the snapshot.
    let scope = HealthAggregator::scope_from_recorder(&cfg.name, health_cfg, &rec);
    monitor.check_health_agreement(&scope);
    monitor.flush_telemetry();
    let outcome = finish_outcome(monitor, report);
    let rec = Rc::try_unwrap(rec)
        .ok()
        .expect("drive_mesh_case released every telemetry handle");
    (outcome, scope, rec)
}

/// Whether `cfg` produces at least one violation with the given key —
/// the oracle the shrinker and the replay checker share.
#[must_use]
pub fn mesh_reproduces(cfg: &MeshCaseConfig, key: (MeshInvariant, Option<usize>)) -> bool {
    run_mesh_case(cfg).violations.iter().any(|v| v.key() == key)
}

// ---------------------------------------------------------------------
// Shrinking and the repro format
// ---------------------------------------------------------------------

/// A shrunken mesh case plus the violation it still produces.
pub struct MeshShrinkReport {
    /// The reduced case.
    pub case: MeshCaseConfig,
    /// The violation it reproduces.
    pub violation: MeshViolation,
}

fn first_matching(
    cfg: &MeshCaseConfig,
    key: (MeshInvariant, Option<usize>),
) -> Option<MeshViolation> {
    run_mesh_case(cfg)
        .violations
        .into_iter()
        .find(|v| v.key() == key)
}

/// Greedy delta-debugging over the schedule and the run length: drop
/// events one at a time, then halve the injection cycles (discarding
/// events past the new horizon), re-checking the violation key after
/// every candidate. `budget` bounds the number of candidate re-runs.
#[must_use]
pub fn shrink_mesh(
    cfg: &MeshCaseConfig,
    key: (MeshInvariant, Option<usize>),
    budget: usize,
) -> Option<MeshShrinkReport> {
    let spent = std::cell::Cell::new(0usize);
    let run = |candidate: &MeshCaseConfig| -> Option<MeshViolation> {
        spent.set(spent.get() + 1);
        first_matching(candidate, key)
    };
    let mut violation = run(cfg)?;
    let mut best = cfg.clone();
    // Pass 1: drop events. On success stay at the same index (the next
    // event shifted into it).
    let mut i = 0;
    while i < best.schedule.events.len() && spent.get() < budget {
        let mut candidate = best.clone();
        candidate.schedule.events.remove(i);
        if let Some(v) = run(&candidate) {
            best = candidate;
            violation = v;
        } else {
            i += 1;
        }
    }
    // Pass 2: halve the injection phase while the violation survives.
    while best.cycles > 25 && spent.get() < budget {
        let mut candidate = best.clone();
        candidate.cycles = (candidate.cycles / 2).max(25);
        candidate
            .schedule
            .events
            .retain(|e| e.at_cycle < candidate.cycles);
        if candidate == best {
            break;
        }
        if let Some(v) = run(&candidate) {
            best = candidate;
            violation = v;
        } else {
            break;
        }
    }
    Some(MeshShrinkReport {
        case: best,
        violation,
    })
}

/// The violation a mesh repro file promises to reproduce.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpectedMeshViolation {
    /// Invariant that must break.
    pub kind: MeshInvariant,
    /// Link it must break on (`None` = end-to-end, rendered `e2e`).
    pub link: Option<usize>,
    /// Cycle it broke at in the original run (informational; replay
    /// matches on `(kind, link)` only).
    pub cycle: u64,
}

/// A parsed (or to-be-written) mesh reproducer: the
/// `socbus-mesh-repro v1` format, byte-canonical like the path format
/// (`serialize(parse(text)) == text`).
#[derive(Clone, Debug, PartialEq)]
pub struct MeshRepro {
    /// The case to re-run.
    pub case: MeshCaseConfig,
    /// The violation it must produce.
    pub expect: ExpectedMeshViolation,
}

const MESH_HEADER: &str = "socbus-mesh-repro v1";

impl MeshRepro {
    /// Bundles a shrunken case with its violation.
    #[must_use]
    pub fn new(case: MeshCaseConfig, violation: &MeshViolation) -> MeshRepro {
        MeshRepro {
            case,
            expect: ExpectedMeshViolation {
                kind: violation.kind,
                link: violation.link,
                cycle: violation.cycle,
            },
        }
    }

    /// Renders the canonical file text.
    #[must_use]
    pub fn serialize(&self) -> String {
        let c = &self.case;
        let mut out = String::new();
        let _ = writeln!(out, "{MESH_HEADER}");
        let _ = writeln!(out, "name {}", c.name);
        let _ = writeln!(out, "scheme {}", c.scheme.name());
        let _ = writeln!(out, "data_bits {}", c.data_bits);
        let _ = writeln!(out, "width {}", c.width);
        let _ = writeln!(out, "height {}", c.height);
        let _ = writeln!(out, "eps {:?}", c.eps);
        match c.protocol {
            Protocol::Fec => {
                let _ = writeln!(out, "protocol fec");
            }
            Protocol::DetectRetransmit {
                rtt_cycles,
                max_retries,
            } => {
                let _ = writeln!(
                    out,
                    "protocol detect-retransmit rtt={rtt_cycles} max_retries={max_retries}"
                );
            }
            Protocol::ArqBackoff {
                timeout_cycles,
                backoff_base,
                backoff_cap,
                max_retries,
            } => {
                let _ = writeln!(
                    out,
                    "protocol arq-backoff timeout={timeout_cycles} base={backoff_base} \
                     cap={backoff_cap} max_retries={max_retries}"
                );
            }
        }
        let _ = writeln!(out, "rate {:?}", c.rate);
        match c.pattern {
            MeshPattern::Uniform => {
                let _ = writeln!(out, "pattern uniform");
            }
            MeshPattern::Hotspot { node, fraction } => {
                let _ = writeln!(out, "pattern hotspot node={node} fraction={fraction:?}");
            }
            MeshPattern::Transpose => {
                let _ = writeln!(out, "pattern transpose");
            }
        }
        let _ = writeln!(out, "cycles {}", c.cycles);
        let _ = writeln!(out, "drain_cycles {}", c.drain_cycles);
        let _ = writeln!(
            out,
            "e2e timeout={} base={} cap={} max_retries={} ack_latency={}",
            c.e2e.timeout,
            c.e2e.backoff_base,
            c.e2e.backoff_cap,
            c.e2e.max_retries,
            c.e2e.ack_latency
        );
        if let Some(n) = c.auto_down_after {
            let _ = writeln!(out, "auto_down {n}");
        }
        let _ = writeln!(
            out,
            "expect_full_delivery {}",
            u8::from(c.expect_full_delivery)
        );
        let _ = writeln!(out, "traffic_seed {}", c.traffic_seed);
        let _ = writeln!(out, "sim_seed {}", c.sim_seed);
        for e in &c.schedule.events {
            let _ = write!(out, "event at={} ", e.at_cycle);
            match &e.action {
                MeshAction::Activate { id, link, spec } => {
                    let _ = writeln!(out, "activate id={id} link={link} spec={}", spec_str(spec));
                }
                MeshAction::Deactivate { id } => {
                    let _ = writeln!(out, "deactivate id={id}");
                }
                MeshAction::LinkDown { link } => {
                    let _ = writeln!(out, "link-down link={link}");
                }
                MeshAction::LinkUp { link } => {
                    let _ = writeln!(out, "link-up link={link}");
                }
            }
        }
        let _ = writeln!(
            out,
            "expect invariant={} link={} cycle={}",
            self.expect.kind.name(),
            self.expect
                .link
                .map_or_else(|| "e2e".to_owned(), |l| l.to_string()),
            self.expect.cycle
        );
        out
    }

    /// Parses a mesh repro file.
    ///
    /// # Errors
    ///
    /// Returns a line-tagged message on any malformed or missing field.
    pub fn parse(text: &str) -> Result<MeshRepro, String> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty repro file")?;
        if first != MESH_HEADER {
            return Err(format!("bad header {first:?}; expected {MESH_HEADER:?}"));
        }
        let mut name = None;
        let mut scheme = None;
        let mut data_bits = None;
        let mut width = None;
        let mut height = None;
        let mut eps = None;
        let mut protocol = None;
        let mut rate = None;
        let mut pattern = None;
        let mut cycles = None;
        let mut drain_cycles = None;
        let mut e2e = None;
        let mut auto_down_after = None;
        let mut expect_full_delivery = None;
        let mut traffic_seed = None;
        let mut sim_seed = None;
        let mut events = Vec::new();
        let mut expect = None;
        for (lineno, line) in lines {
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| at(format!("malformed line {line:?}")))?;
            match key {
                "name" => name = Some(rest.to_owned()),
                "scheme" => {
                    scheme = Some(
                        Scheme::from_name(rest)
                            .ok_or_else(|| at(format!("unknown scheme {rest:?}")))?,
                    );
                }
                "data_bits" => data_bits = Some(parse_num(rest).map_err(&at)?),
                "width" => width = Some(parse_num(rest).map_err(&at)?),
                "height" => height = Some(parse_num(rest).map_err(&at)?),
                "eps" => eps = Some(parse_f64(rest).map_err(&at)?),
                "protocol" => protocol = Some(parse_protocol(rest).map_err(&at)?),
                "rate" => rate = Some(parse_f64(rest).map_err(&at)?),
                "pattern" => pattern = Some(parse_pattern(rest).map_err(&at)?),
                "cycles" => cycles = Some(parse_num(rest).map_err(&at)?),
                "drain_cycles" => drain_cycles = Some(parse_num(rest).map_err(&at)?),
                "e2e" => {
                    let mut toks = rest.split_whitespace();
                    e2e = Some(EndToEnd {
                        timeout: kv(toks.next(), "timeout")
                            .and_then(parse_num)
                            .map_err(&at)?,
                        backoff_base: kv(toks.next(), "base").and_then(parse_num).map_err(&at)?,
                        backoff_cap: kv(toks.next(), "cap").and_then(parse_num).map_err(&at)?,
                        max_retries: kv(toks.next(), "max_retries")
                            .and_then(parse_num)
                            .map_err(&at)?,
                        ack_latency: kv(toks.next(), "ack_latency")
                            .and_then(parse_num)
                            .map_err(&at)?,
                    });
                }
                "auto_down" => auto_down_after = Some(parse_num(rest).map_err(&at)?),
                "expect_full_delivery" => {
                    expect_full_delivery = Some(match rest {
                        "0" => false,
                        "1" => true,
                        other => return Err(at(format!("bad expect_full_delivery {other:?}"))),
                    });
                }
                "traffic_seed" => traffic_seed = Some(parse_num(rest).map_err(&at)?),
                "sim_seed" => sim_seed = Some(parse_num(rest).map_err(&at)?),
                "event" => events.push(parse_mesh_event(rest).map_err(&at)?),
                "expect" => expect = Some(parse_mesh_expect(rest).map_err(&at)?),
                other => return Err(at(format!("unknown key {other:?}"))),
            }
        }
        let missing = |what: &str| format!("missing {what}");
        Ok(MeshRepro {
            case: MeshCaseConfig {
                name: name.ok_or_else(|| missing("name"))?,
                scheme: scheme.ok_or_else(|| missing("scheme"))?,
                data_bits: data_bits.ok_or_else(|| missing("data_bits"))?,
                width: width.ok_or_else(|| missing("width"))?,
                height: height.ok_or_else(|| missing("height"))?,
                eps: eps.ok_or_else(|| missing("eps"))?,
                protocol: protocol.ok_or_else(|| missing("protocol"))?,
                rate: rate.ok_or_else(|| missing("rate"))?,
                pattern: pattern.ok_or_else(|| missing("pattern"))?,
                cycles: cycles.ok_or_else(|| missing("cycles"))?,
                drain_cycles: drain_cycles.ok_or_else(|| missing("drain_cycles"))?,
                e2e: e2e.ok_or_else(|| missing("e2e"))?,
                auto_down_after,
                expect_full_delivery: expect_full_delivery
                    .ok_or_else(|| missing("expect_full_delivery"))?,
                traffic_seed: traffic_seed.ok_or_else(|| missing("traffic_seed"))?,
                sim_seed: sim_seed.ok_or_else(|| missing("sim_seed"))?,
                schedule: MeshSchedule { events },
            },
            expect: expect.ok_or_else(|| missing("expect"))?,
        })
    }
}

fn parse_pattern(rest: &str) -> Result<MeshPattern, String> {
    let mut toks = rest.split_whitespace();
    match toks.next() {
        Some("uniform") => Ok(MeshPattern::Uniform),
        Some("hotspot") => Ok(MeshPattern::Hotspot {
            node: kv(toks.next(), "node").and_then(parse_num)?,
            fraction: kv(toks.next(), "fraction").and_then(parse_f64)?,
        }),
        Some("transpose") => Ok(MeshPattern::Transpose),
        other => Err(format!("unknown pattern {other:?}")),
    }
}

fn parse_mesh_event(rest: &str) -> Result<MeshEvent, String> {
    let mut toks = rest.split_whitespace();
    let at_cycle = kv(toks.next(), "at").and_then(parse_num)?;
    let action = match toks.next() {
        Some("activate") => {
            let id = kv(toks.next(), "id").and_then(parse_num)?;
            let link = kv(toks.next(), "link").and_then(parse_num)?;
            let spec_tag = kv(toks.next(), "spec")?;
            let joined = format!("{spec_tag} {}", toks.collect::<Vec<_>>().join(" "));
            let mut spec_toks = joined.split_whitespace();
            MeshAction::Activate {
                id,
                link,
                spec: parse_spec(&mut spec_toks)?,
            }
        }
        Some("deactivate") => MeshAction::Deactivate {
            id: kv(toks.next(), "id").and_then(parse_num)?,
        },
        Some("link-down") => MeshAction::LinkDown {
            link: kv(toks.next(), "link").and_then(parse_num)?,
        },
        Some("link-up") => MeshAction::LinkUp {
            link: kv(toks.next(), "link").and_then(parse_num)?,
        },
        other => return Err(format!("unknown event action {other:?}")),
    };
    Ok(MeshEvent { at_cycle, action })
}

fn parse_mesh_expect(rest: &str) -> Result<ExpectedMeshViolation, String> {
    let mut toks = rest.split_whitespace();
    let kind_name = kv(toks.next(), "invariant")?;
    let kind = MeshInvariant::from_name(&kind_name)
        .ok_or_else(|| format!("unknown invariant {kind_name:?}"))?;
    let link_str = kv(toks.next(), "link")?;
    let link = if link_str == "e2e" {
        None
    } else {
        Some(parse_num(&link_str)?)
    };
    let cycle = kv(toks.next(), "cycle").and_then(parse_num)?;
    Ok(ExpectedMeshViolation { kind, link, cycle })
}

/// Shrinks a violating mesh case and writes the reproducer file.
/// Returns the path written.
///
/// # Errors
///
/// Returns a message if shrinking fails to reproduce or the file cannot
/// be written.
pub fn write_mesh_repro(
    cfg: &MeshCaseConfig,
    violation: &MeshViolation,
    dir: &Path,
) -> Result<std::path::PathBuf, String> {
    let report = shrink_mesh(cfg, violation.key(), SHRINK_BUDGET)
        .ok_or_else(|| format!("case {} does not reproduce {violation:?}", cfg.name))?;
    let repro = MeshRepro::new(report.case, &report.violation);
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let file = dir.join(format!(
        "{}.txt",
        cfg.name.replace(['/', '(', ')', '+'], "_")
    ));
    std::fs::write(&file, repro.serialize())
        .map_err(|e| format!("write {}: {e}", file.display()))?;
    Ok(file)
}

/// Replays a mesh reproducer file: parses it, re-checks the canonical
/// form, re-runs the case, and reports whether the recorded violation
/// fired.
///
/// # Errors
///
/// Returns a message on parse failure; `Ok(None)` means the case ran
/// but the violation did *not* reproduce.
pub fn replay_mesh_text(text: &str) -> Result<Option<MeshViolation>, String> {
    replay_mesh_text_with(text, Telemetry::off())
}

/// [`replay_mesh_text`] with a telemetry handle wired through the
/// replayed case.
///
/// # Errors
///
/// Returns a message on parse failure; `Ok(None)` means the case ran
/// but the violation did *not* reproduce.
pub fn replay_mesh_text_with(text: &str, tel: Telemetry) -> Result<Option<MeshViolation>, String> {
    let repro = MeshRepro::parse(text)?;
    if repro.serialize() != text {
        return Err("file is not in canonical form (was it hand-edited?)".into());
    }
    let key = (repro.expect.kind, repro.expect.link);
    Ok(run_mesh_case_with(&repro.case, tel)
        .violations
        .into_iter()
        .find(|v| v.key() == key))
}

// ---------------------------------------------------------------------
// The campaign
// ---------------------------------------------------------------------

/// Formats an `f64` for the JSON output (same convention as the soak
/// campaign: fixed-precision exponential, deterministic).
fn num(x: f64) -> String {
    if x == 0.0 {
        "0.0".to_owned()
    } else {
        format!("{x:.6e}")
    }
}

/// The static shard list: one mesh cell per (scheme, family) grid
/// position, seeded deterministically from that position.
#[must_use]
pub fn mesh_cells() -> Vec<(Scheme, MeshFamily, u64)> {
    let mut cells = Vec::new();
    for (si, scheme) in Scheme::catalog().into_iter().enumerate() {
        for (fi, family) in MeshFamily::all().into_iter().enumerate() {
            let seed = (si * MeshFamily::all().len() + fi) as u64 + 1;
            cells.push((scheme, family, seed));
        }
    }
    cells
}

/// The `--smoke` subset of [`mesh_cells`]: one cell per fault family
/// (each with a different scheme), so CI covers all five families
/// without running the full grid.
#[must_use]
pub fn mesh_smoke_cells() -> Vec<(Scheme, MeshFamily, u64)> {
    let schemes = Scheme::catalog();
    let families = MeshFamily::all();
    families
        .into_iter()
        .enumerate()
        .map(|(fi, family)| {
            let si = fi % schemes.len();
            let seed = (si * families.len() + fi) as u64 + 1;
            (schemes[si], family, seed)
        })
        .collect()
}

/// Assembles the [`MeshCaseConfig`] for one `(scheme, family, seed)`
/// cell — the single source of truth shared by the CLI, the campaign,
/// and the tests. Links run clean (`eps = 0`) at baseline: the schedule
/// carries all the chaos, so the single-link-down family can arm
/// reroute-delivers (any flagged loss there is a routing bug, not
/// noise).
#[must_use]
pub fn build_mesh_case(
    scheme: Scheme,
    family: MeshFamily,
    seed: u64,
    cycles: u64,
) -> MeshCaseConfig {
    let wires = scheme.build(DEFAULT_DATA_BITS).wires();
    let links = mesh_topology(MESH_WIDTH, MESH_HEIGHT).len();
    let params = MeshScheduleParams {
        cycles,
        links,
        wires,
    };
    let schedule = MeshSchedule::random(family, &params, seed);
    MeshCaseConfig {
        name: format!("{}/{}", scheme.name(), family.name()),
        scheme,
        data_bits: DEFAULT_DATA_BITS,
        width: MESH_WIDTH,
        height: MESH_HEIGHT,
        eps: 0.0,
        protocol: protocol_for(scheme, seed),
        rate: MESH_RATE,
        pattern: MeshPattern::Uniform,
        cycles,
        drain_cycles: MESH_DRAIN_CYCLES,
        e2e: EndToEnd::default(),
        auto_down_after: Some(MESH_AUTO_DOWN),
        expect_full_delivery: family == MeshFamily::SingleLinkDown,
        traffic_seed: seed ^ 0xA5A5,
        sim_seed: seed,
        schedule,
    }
}

/// Runs the mesh campaign over an explicit cell list on up to `threads`
/// workers; outcomes merge in grid order, so the rendered JSON is
/// byte-identical for every thread count.
#[must_use]
pub fn run_mesh_campaign_parallel(
    cells: &[(Scheme, MeshFamily, u64)],
    cycles: u64,
    threads: usize,
) -> Vec<(String, MeshCaseOutcome)> {
    run_shards(threads, cells, |_, &(scheme, family, seed)| {
        let cfg = build_mesh_case(scheme, family, seed, cycles);
        (cfg.name.clone(), run_mesh_case(&cfg))
    })
}

/// [`run_mesh_campaign_parallel`] with per-cell private recorders
/// merged in grid order (same discipline as the soak campaign's traced
/// runner).
#[must_use]
pub fn run_mesh_campaign_traced(
    cells: &[(Scheme, MeshFamily, u64)],
    cycles: u64,
    threads: usize,
) -> (Vec<(String, MeshCaseOutcome)>, Recorder) {
    let sharded = run_shards(threads, cells, |_, &(scheme, family, seed)| {
        let cfg = build_mesh_case(scheme, family, seed, cycles);
        let name = cfg.name.clone();
        let rec = Rc::new(Recorder::new());
        let out = run_mesh_case_with(&cfg, Telemetry::from_recorder(&rec));
        let rec = Rc::try_unwrap(rec)
            .ok()
            .expect("run_mesh_case_with released every telemetry handle");
        (name, out, rec)
    });
    let combined = Recorder::new();
    let outcomes = sharded
        .into_iter()
        .map(|(name, out, rec)| {
            combined.absorb(&rec);
            (name, out)
        })
        .collect();
    (outcomes, combined)
}

/// [`run_mesh_campaign_traced`] with the health monitor in the loop:
/// every cell runs under its own recorder, its stream folds through the
/// health aggregator into one incident-report scope per cell, and the
/// health-consistent invariant is checked cell by cell. Scopes are
/// pushed and recorders absorbed in grid order, so both the incident
/// report and the merged recorder are byte-identical for every thread
/// count.
#[must_use]
pub fn run_mesh_campaign_health(
    cells: &[(Scheme, MeshFamily, u64)],
    cycles: u64,
    threads: usize,
    health_cfg: &HealthConfig,
) -> (Vec<(String, MeshCaseOutcome)>, HealthReport, Recorder) {
    let sharded = run_shards(threads, cells, |_, &(scheme, family, seed)| {
        let cfg = build_mesh_case(scheme, family, seed, cycles);
        let name = cfg.name.clone();
        let (out, scope, rec) = run_mesh_case_health(&cfg, health_cfg);
        (name, out, scope, rec)
    });
    let combined = Recorder::new();
    let mut health = HealthReport::new();
    let outcomes = sharded
        .into_iter()
        .map(|(name, out, scope, rec)| {
            combined.absorb(&rec);
            health.push_scope(scope);
            (name, out)
        })
        .collect();
    (outcomes, health, combined)
}

/// Renders the mesh campaign JSON.
#[must_use]
pub fn render_mesh_json(cycles: u64, outcomes: &[(String, MeshCaseOutcome)]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"data_bits\": {DEFAULT_DATA_BITS},");
    let _ = writeln!(json, "  \"mesh\": \"{MESH_WIDTH}x{MESH_HEIGHT}\",");
    let _ = writeln!(json, "  \"cycles_per_case\": {cycles},");
    json.push_str("  \"cases\": [\n");
    let mut first = true;
    for (name, out) in outcomes {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str("    {");
        let _ = write!(json, "\"case\": \"{name}\", ");
        let _ = write!(json, "\"violations\": {}, ", out.violations.len());
        let _ = write!(json, "\"injected\": {}, ", out.report.injected);
        let _ = write!(json, "\"delivered\": {}, ", out.report.delivered);
        let _ = write!(json, "\"flagged_lost\": {}, ", out.report.flagged_lost);
        let _ = write!(json, "\"duplicates\": {}, ", out.report.duplicates);
        let _ = write!(
            json,
            "\"e2e_retransmits\": {}, ",
            out.report.e2e_retransmits
        );
        let _ = write!(
            json,
            "\"dropped_poisoned\": {}, ",
            out.report.dropped_poisoned
        );
        let _ = write!(json, "\"links_down\": {}, ", out.report.links_down);
        let _ = write!(json, "\"throughput\": {}, ", num(out.report.throughput()));
        let _ = write!(
            json,
            "\"p50_latency\": {}, ",
            out.report.latency_quantile(0.5)
        );
        let _ = write!(
            json,
            "\"p99_latency\": {}",
            out.report.latency_quantile(0.99)
        );
        json.push('}');
    }
    json.push_str("\n  ],\n");
    json.push_str("  \"invariants\": {\n");
    let mut first = true;
    for kind in MeshInvariant::all() {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let (checked, violated) = outcomes
            .iter()
            .flat_map(|(_, out)| out.stats.iter())
            .filter(|(k, _)| *k == kind)
            .fold((0u64, 0u64), |(c, v), (_, s)| {
                (c + s.checked, v + s.violated)
            });
        let _ = write!(
            json,
            "    \"{}\": {{\"checked\": {checked}, \"violated\": {violated}}}",
            kind.name()
        );
    }
    json.push_str("\n  },\n");
    let violations: usize = outcomes.iter().map(|(_, out)| out.violations.len()).sum();
    let _ = writeln!(json, "  \"violations\": {violations}");
    json.push_str("}\n");
    json
}

/// Creates the parent directory of `path` if it has one.
fn ensure_parent(path: &str) {
    if let Some(dir) = Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
}

/// The mesh campaign entry point behind `chaos mesh`. Every cell runs
/// under the health monitor, so the campaign always produces an
/// incident timeline and always checks the health-consistent invariant.
/// Args: `[--smoke] [--threads N] [--trace-out <path>]
/// [--health-out <path>] [out_path]`.
/// Returns the process exit code (nonzero iff any invariant violated).
#[must_use]
pub fn mesh_main(args: &[String]) -> i32 {
    let mut smoke = false;
    let mut threads = default_threads();
    let mut trace_out: Option<String> = None;
    let mut health_out = "results/BENCH_mesh_chaos.health.json".to_owned();
    let mut out_path = "results/BENCH_mesh_chaos.json".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                let Some(n) = it.next().and_then(|v| parse_threads(v)) else {
                    eprintln!("chaos mesh: --threads needs a positive integer");
                    return 2;
                };
                threads = n;
            }
            "--trace-out" => {
                let Some(path) = it.next() else {
                    eprintln!("chaos mesh: --trace-out needs a path");
                    return 2;
                };
                trace_out = Some(path.clone());
            }
            "--health-out" => {
                let Some(path) = it.next() else {
                    eprintln!("chaos mesh: --health-out needs a path");
                    return 2;
                };
                health_out = path.clone();
            }
            other if other.starts_with("--") => {
                eprintln!("chaos mesh: unknown flag {other}");
                return 2;
            }
            other => out_path = other.to_owned(),
        }
    }
    let (cells, cycles) = if smoke {
        (mesh_smoke_cells(), SMOKE_MESH_CYCLES)
    } else {
        (mesh_cells(), FULL_MESH_CYCLES)
    };
    let health_cfg = HealthConfig::default();
    let started = std::time::Instant::now();
    let (outcomes, health, recorder) =
        run_mesh_campaign_health(&cells, cycles, threads, &health_cfg);
    let wall = started.elapsed();
    for ((name, out), scope) in outcomes.iter().zip(&health.scopes) {
        eprintln!(
            "{name:<26} injected {:>4}  delivered {:>4}  lost {:>2}  retx {:>4}  \
             incidents {}  violations {}",
            out.report.injected,
            out.report.delivered,
            out.report.flagged_lost,
            out.report.e2e_retransmits,
            scope.incidents.len(),
            out.violations.len()
        );
    }
    let json = render_mesh_json(cycles, &outcomes);
    ensure_parent(&out_path);
    std::fs::write(&out_path, &json).expect("write mesh campaign output");
    ensure_parent(&health_out);
    std::fs::write(&health_out, health.serialize()).expect("write incident report");
    let incidents: usize = health.scopes.iter().map(|s| s.incidents.len()).sum();
    let alerts: usize = health.scopes.iter().map(|s| s.alerts.len()).sum();
    eprintln!(
        "chaos mesh: incidents -> {health_out} ({} scope(s), {incidents} incident(s), \
         {alerts} alert(s))",
        health.scopes.len()
    );
    if let Some(path) = &trace_out {
        ensure_parent(path);
        std::fs::write(path, recorder.export_jsonl()).expect("write telemetry JSONL");
        let perfetto = format!("{path}.trace.json");
        // Health scores and budget burn ride along as counter tracks.
        std::fs::write(
            &perfetto,
            recorder.export_chrome_trace_with_counters(&health.counter_samples()),
        )
        .expect("write Perfetto trace");
        let stats = recorder.ring_stats();
        eprintln!(
            "chaos mesh: telemetry -> {path} + {perfetto} ({} recorded, {} dropped)",
            stats.recorded, stats.dropped
        );
        if let Some(warning) = stats.overflow_warning() {
            eprintln!("chaos mesh: {warning}");
        }
    }
    let violations: usize = outcomes.iter().map(|(_, out)| out.violations.len()).sum();
    eprintln!(
        "chaos mesh: {} cases x {cycles} cycles on {threads} thread(s) in {:.2}s -> {out_path} ({violations} violation(s))",
        outcomes.len(),
        wall.as_secs_f64()
    );
    if violations == 0 {
        return 0;
    }
    // Same artifact discipline as the soak campaign: shrink the first
    // violating cell to a reproducer, then replay it under telemetry so
    // a Perfetto trace and an incident report of the minimal failure
    // land next to it.
    for (&(scheme, family, seed), (name, out)) in cells.iter().zip(&outcomes) {
        if let Some(v) = out.violations.first() {
            eprintln!("chaos mesh: {name} violated: {}", v.detail);
            let cfg = build_mesh_case(scheme, family, seed, cycles);
            match write_mesh_repro(&cfg, v, Path::new("results/repro")) {
                Ok(file) => {
                    eprintln!("chaos mesh: reproducer written to {}", file.display());
                    let rec = Rc::new(Recorder::new());
                    let replayed = std::fs::read_to_string(&file).ok().and_then(|text| {
                        replay_mesh_text_with(&text, Telemetry::from_recorder(&rec)).ok()
                    });
                    if replayed.is_some() {
                        let trace = format!("{}.trace.json", file.display());
                        std::fs::write(&trace, rec.export_chrome_trace())
                            .expect("write repro trace");
                        eprintln!("chaos mesh: trace written to {trace}");
                        let mut repro_health = HealthReport::new();
                        repro_health.push_scope(HealthAggregator::scope_from_recorder(
                            name,
                            &health_cfg,
                            &rec,
                        ));
                        let health_path = format!("{}.health.json", file.display());
                        std::fs::write(&health_path, repro_health.serialize())
                            .expect("write repro incident report");
                        eprintln!("chaos mesh: incident report written to {health_path}");
                    }
                }
                Err(e) => eprintln!("chaos mesh: shrink failed: {e}"),
            }
            break;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_noc::mesh::Direction;
    use socbus_telemetry::health::EntitySummary;

    #[test]
    fn mesh_schedules_are_deterministic_per_seed() {
        let params = MeshScheduleParams {
            cycles: 200,
            links: 24,
            wires: 21,
        };
        for family in MeshFamily::all() {
            let a = MeshSchedule::random(family, &params, 9);
            let b = MeshSchedule::random(family, &params, 9);
            assert_eq!(a, b, "{}", family.name());
            assert!(!a.events.is_empty(), "{}", family.name());
            let c = MeshSchedule::random(family, &params, 10);
            assert_ne!(a, c, "{} must vary with the seed", family.name());
        }
    }

    #[test]
    fn single_link_down_schedules_down_exactly_one_link_at_cycle_zero() {
        let params = MeshScheduleParams {
            cycles: 200,
            links: 24,
            wires: 21,
        };
        for seed in 0..20 {
            let s = MeshSchedule::random(MeshFamily::SingleLinkDown, &params, seed);
            assert_eq!(s.events.len(), 1);
            assert_eq!(s.events[0].at_cycle, 0);
            assert!(matches!(
                s.events[0].action,
                MeshAction::LinkDown { link } if link < 24
            ));
        }
    }

    #[test]
    fn shadow_topology_matches_the_simulator() {
        for (w, h) in [(3, 3), (2, 4)] {
            let cfg = MeshConfig::new(w, h, LinkConfig::new(Scheme::Dap, 16, 0.0));
            let sim = MeshSim::new(&cfg, 1, 2);
            let shadow = mesh_topology(w, h);
            assert_eq!(shadow.len(), sim.link_count());
            for (l, &(from, to)) in shadow.iter().enumerate() {
                let (sf, st, _dir) = sim.link_endpoints(l);
                assert_eq!((from, to), (sf, st), "link {l} on {w}x{h}");
            }
        }
    }

    #[test]
    fn monitor_distances_respect_downed_links() {
        let mut m = MeshMonitor::new(3, 3, false);
        // Full topology: Manhattan distances.
        assert_eq!(m.dist(0, 8), 4);
        assert_eq!(m.dist(8, 0), 4);
        // Down node 0's east link (link 0: 0 -> 1); 0 -> 1 now detours.
        let shadow = mesh_topology(3, 3);
        assert_eq!(shadow[0], (0, 1));
        m.set_link_down(0, true);
        assert_eq!(m.dist(0, 1), 3);
        assert_eq!(m.dist(1, 0), 1, "reverse direction is unaffected");
        m.set_link_down(0, false);
        assert_eq!(m.dist(0, 1), 1);
    }

    fn quick_case(seed: u64) -> MeshCaseConfig {
        let mut cfg = build_mesh_case(Scheme::Dap, MeshFamily::MixedMesh, seed, 60);
        // Tight e2e knobs keep debug-mode tests fast without changing
        // any semantics under test.
        cfg.e2e = EndToEnd {
            timeout: 12,
            backoff_base: 2,
            backoff_cap: 16,
            max_retries: 3,
            ack_latency: 2,
        };
        cfg.drain_cycles = 800;
        cfg
    }

    #[test]
    fn mesh_case_runs_are_deterministic() {
        let cfg = quick_case(5);
        let a = run_mesh_case(&cfg);
        let b = run_mesh_case(&cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(a.violations, b.violations);
        assert!(a.report.injected > 0);
    }

    #[test]
    fn smoke_grid_has_zero_violations() {
        for (scheme, family, seed) in mesh_smoke_cells() {
            let mut cfg = build_mesh_case(scheme, family, seed, 80);
            cfg.e2e = EndToEnd {
                timeout: 12,
                backoff_base: 2,
                backoff_cap: 16,
                max_retries: 6,
                ack_latency: 2,
            };
            cfg.drain_cycles = 2_000;
            let out = run_mesh_case(&cfg);
            assert_eq!(
                out.violations,
                vec![],
                "{} must hold every invariant: {:?}",
                cfg.name,
                out.violations.first()
            );
            assert!(out.report.injected > 0, "{}", cfg.name);
            assert_eq!(
                out.report.injected,
                out.report.delivered + out.report.flagged_lost,
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn auto_retired_links_page_and_agree_with_health() {
        // An always-detected fault on link 0 (every wire flips, odd
        // weight, parity always sees it) retires the link after three
        // consecutive poisoned transfers; the health monitor must mark
        // it Down and open an incident that blames it.
        let mut cfg = quick_case(5);
        cfg.scheme = Scheme::Parity;
        cfg.protocol = Protocol::Fec;
        cfg.rate = 0.5;
        cfg.auto_down_after = Some(3);
        cfg.expect_full_delivery = false;
        cfg.schedule = MeshSchedule {
            events: vec![MeshEvent {
                at_cycle: 0,
                action: MeshAction::Activate {
                    id: 0,
                    link: 0,
                    spec: FaultSpec::Iid { eps: 1.0 },
                },
            }],
        };
        let (out, scope, _rec) = run_mesh_case_health(&cfg, &HealthConfig::default());
        assert!(out.report.links_down >= 1, "the storm must retire link 0");
        let hc = out
            .stats
            .iter()
            .find(|(k, _)| *k == MeshInvariant::HealthConsistent)
            .expect("stats cover every invariant")
            .1;
        assert!(hc.checked >= 1, "agreement must actually be checked");
        assert_eq!(hc.violated, 0, "{:?}", out.violations);
        assert!(
            scope.down_entities().iter().any(|e| e == "link:0"),
            "health must mark link 0 Down: {:?}",
            scope.entities
        );
        assert!(
            scope.blamed_entities().iter().any(|e| e == "link:0"),
            "an incident must blame link 0: {:?}",
            scope.incidents
        );
    }

    #[test]
    fn health_agreement_rejects_silent_and_phantom_downs() {
        let scope = |entities: Vec<EntitySummary>, incidents| ScopeReport {
            scope: "t".into(),
            cycles: 10,
            events: 0,
            ring_dropped: 0,
            entities,
            incidents,
            alerts: vec![],
            slos: vec![],
            samples: vec![],
        };
        let down_entity = |name: &str| EntitySummary {
            entity: name.to_owned(),
            kind: "link".into(),
            state: socbus_telemetry::health::HealthState::Down,
            strain: 9,
            last_cycle: 10,
        };
        // Phantom: health says link 3 is Down, simulator never retired it.
        let mut m = MeshMonitor::new(3, 3, false);
        m.check_health_agreement(&scope(vec![down_entity("link:3")], vec![]));
        assert_eq!(m.violations.len(), 1);
        assert!(m.violations[0].detail.contains("never auto-retired"));
        // Silent: link 2 auto-retired but health never marked it Down.
        let mut m = MeshMonitor::new(3, 3, false);
        m.auto_downed.insert(2);
        m.check_health_agreement(&scope(vec![], vec![]));
        assert_eq!(m.violations.len(), 1);
        assert!(m.violations[0].detail.contains("not Down"));
        // Unblamed: Down in the report, but no incident pages anyone.
        let mut m = MeshMonitor::new(3, 3, false);
        m.auto_downed.insert(2);
        m.check_health_agreement(&scope(vec![down_entity("link:2")], vec![]));
        assert_eq!(m.violations.len(), 1);
        assert!(m.violations[0].detail.contains("no incident blames"));
    }

    #[test]
    fn mesh_health_campaign_is_thread_count_invariant() {
        let cells: Vec<_> = mesh_smoke_cells().into_iter().take(2).collect();
        let cfg = HealthConfig::default();
        let (o1, h1, r1) = run_mesh_campaign_health(&cells, 40, 1, &cfg);
        let (o8, h8, r8) = run_mesh_campaign_health(&cells, 40, 8, &cfg);
        assert_eq!(h1.serialize(), h8.serialize());
        assert_eq!(r1.export_jsonl(), r8.export_jsonl());
        assert_eq!(render_mesh_json(40, &o1), render_mesh_json(40, &o8));
    }

    #[test]
    fn mesh_campaign_json_is_thread_count_invariant() {
        let cells: Vec<_> = mesh_smoke_cells().into_iter().take(2).collect();
        let one = run_mesh_campaign_parallel(&cells, 40, 1);
        let many = run_mesh_campaign_parallel(&cells, 40, 8);
        assert_eq!(render_mesh_json(40, &one), render_mesh_json(40, &many));
    }

    #[test]
    fn mesh_campaign_covers_every_catalog_scheme_and_family() {
        let cells = mesh_cells();
        assert_eq!(
            cells.len(),
            Scheme::catalog().len() * MeshFamily::all().len()
        );
        for scheme in Scheme::catalog() {
            for family in MeshFamily::all() {
                assert!(
                    cells.iter().any(|&(s, f, _)| s == scheme && f == family),
                    "{}/{} missing from the mesh campaign",
                    scheme.name(),
                    family.name()
                );
            }
        }
        let smoke = mesh_smoke_cells();
        assert_eq!(smoke.len(), MeshFamily::all().len());
    }

    fn sample_mesh_repro() -> MeshRepro {
        let mut cfg = build_mesh_case(Scheme::Dap, MeshFamily::MixedMesh, 3, 120);
        cfg.pattern = MeshPattern::Hotspot {
            node: 4,
            fraction: 0.4,
        };
        cfg.schedule.events.push(MeshEvent {
            at_cycle: 7,
            action: MeshAction::Activate {
                id: 42,
                link: 5,
                spec: FaultSpec::Iid { eps: 1.5e-3 },
            },
        });
        cfg.schedule.sort();
        MeshRepro {
            case: cfg,
            expect: ExpectedMeshViolation {
                kind: MeshInvariant::BoundedProgress,
                link: Some(3),
                cycle: 99,
            },
        }
    }

    #[test]
    fn mesh_repro_round_trips_byte_identically() {
        let repro = sample_mesh_repro();
        let text = repro.serialize();
        let back = MeshRepro::parse(&text).expect("parses");
        assert_eq!(back, repro);
        assert_eq!(back.serialize(), text, "canonical form must be stable");
    }

    #[test]
    fn every_event_kind_and_pattern_round_trips() {
        let mut repro = sample_mesh_repro();
        repro.case.pattern = MeshPattern::Transpose;
        repro.case.auto_down_after = None;
        repro.expect.link = None;
        repro.case.schedule = MeshSchedule {
            events: vec![
                MeshEvent {
                    at_cycle: 0,
                    action: MeshAction::LinkDown { link: 2 },
                },
                MeshEvent {
                    at_cycle: 3,
                    action: MeshAction::Activate {
                        id: 0,
                        link: 1,
                        spec: FaultSpec::Burst {
                            eps_good: 1e-4,
                            eps_bad: 0.25,
                            p_enter: 0.05,
                            p_exit: 0.3,
                        },
                    },
                },
                MeshEvent {
                    at_cycle: 5,
                    action: MeshAction::Deactivate { id: 0 },
                },
                MeshEvent {
                    at_cycle: 9,
                    action: MeshAction::LinkUp { link: 2 },
                },
            ],
        };
        let text = repro.serialize();
        assert!(text.contains("pattern transpose"));
        assert!(!text.contains("auto_down"));
        let back = MeshRepro::parse(&text).expect("parses");
        assert_eq!(back, repro);
        assert_eq!(back.serialize(), text);
    }

    #[test]
    fn malformed_mesh_repros_are_rejected_with_context() {
        assert!(MeshRepro::parse("").is_err());
        assert!(MeshRepro::parse("socbus-chaos-repro v1\n").is_err());
        let missing = "socbus-mesh-repro v1\nname x\n";
        let err = MeshRepro::parse(missing).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let full = sample_mesh_repro().serialize();
        let broken = full.replace("invariant=bounded-progress", "invariant=vibes");
        assert!(MeshRepro::parse(&broken).unwrap_err().contains("vibes"));
        // Hand-edited text that still parses (a trailing override line)
        // is refused by the canonical-form re-check.
        let padded = format!("{full}sim_seed 999\n");
        assert!(replay_mesh_text(&padded).unwrap_err().contains("canonical"));
    }

    /// End-to-end harness self-test: strand node 0 by downing both of
    /// its out-links on a cell that arms reroute-delivers, then shrink
    /// the violation and replay the reproducer.
    #[test]
    fn planted_partition_shrinks_to_a_replayable_repro() {
        // Links 0 and 1 are node 0's east and north out-links (the only
        // two it has), so packets *from* node 0 can never leave.
        let shadow = mesh_topology(3, 3);
        assert_eq!(shadow[0], (0, 1));
        assert_eq!(shadow[1], (0, 3));
        let cfg = MeshCaseConfig {
            name: "planted/partition".into(),
            scheme: Scheme::Dap,
            data_bits: 16,
            width: 3,
            height: 3,
            eps: 0.0,
            protocol: Protocol::Fec,
            rate: 0.2,
            pattern: MeshPattern::Uniform,
            cycles: 40,
            drain_cycles: 600,
            e2e: EndToEnd {
                timeout: 8,
                backoff_base: 2,
                backoff_cap: 8,
                max_retries: 2,
                ack_latency: 2,
            },
            auto_down_after: None,
            expect_full_delivery: true,
            traffic_seed: 11,
            sim_seed: 7,
            schedule: MeshSchedule {
                events: vec![
                    MeshEvent {
                        at_cycle: 0,
                        action: MeshAction::LinkDown { link: 0 },
                    },
                    MeshEvent {
                        at_cycle: 0,
                        action: MeshAction::LinkDown { link: 1 },
                    },
                ],
            },
        };
        let out = run_mesh_case(&cfg);
        let v = out
            .violations
            .iter()
            .find(|v| v.kind == MeshInvariant::RerouteDelivers)
            .expect("stranding a node must break reroute-delivers");
        assert!(out.report.flagged_lost > 0);
        assert_eq!(
            out.report.injected,
            out.report.delivered + out.report.flagged_lost,
            "conservation must hold even while reroute-delivers breaks"
        );
        let shrunk = shrink_mesh(&cfg, v.key(), 60).expect("shrink reproduces");
        assert!(
            shrunk.case.schedule.events.len() == 2,
            "neither link-down is droppable: {:?}",
            shrunk.case.schedule.events
        );
        assert!(shrunk.case.cycles <= cfg.cycles);
        let repro = MeshRepro::new(shrunk.case, &shrunk.violation);
        let text = repro.serialize();
        let replayed = replay_mesh_text(&text).expect("parses");
        let replayed = replayed.expect("reproduces");
        assert_eq!(replayed.kind, MeshInvariant::RerouteDelivers);
    }

    /// A single downed link (the campaign's link_down family) must NOT
    /// violate anything: the fallback reroutes and delivers everything.
    #[test]
    fn single_link_down_cell_delivers_everything() {
        let mut cfg = build_mesh_case(Scheme::Parity, MeshFamily::SingleLinkDown, 16, 60);
        cfg.e2e = EndToEnd {
            timeout: 12,
            backoff_base: 2,
            backoff_cap: 16,
            max_retries: 6,
            ack_latency: 2,
        };
        cfg.drain_cycles = 1_500;
        assert!(cfg.expect_full_delivery);
        let out = run_mesh_case(&cfg);
        assert_eq!(out.violations, vec![], "{:?}", out.violations.first());
        assert_eq!(out.report.flagged_lost, 0);
        assert_eq!(out.report.delivered, out.report.injected);
    }

    #[test]
    fn direction_enumeration_assumption_holds() {
        // mesh_topology's E/W/N/S per-node order replicates
        // Direction::all(); if the simulator ever reorders it, the
        // shadow-topology test above fails — this pins the contract.
        assert_eq!(
            Direction::all(),
            [
                Direction::East,
                Direction::West,
                Direction::North,
                Direction::South
            ]
        );
    }
}
