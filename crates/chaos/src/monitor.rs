//! Online invariant monitors for chaos runs.
//!
//! The monitor watches every word cross the path ([`Monitor::observe`])
//! and audits the final accounting ([`Monitor::finish`]). Five invariant
//! families:
//!
//! * **silent-corruption** — a decoder may never hand up a wrong word
//!   while claiming success *within its advertised guarantees*. If the
//!   channel injected at most `correctable_errors` wire flips on every
//!   attempt, delivery must be exact; if it injected at most
//!   `detectable_errors` and the final decode reported `Clean` /
//!   `Unchecked`, delivery must be exact. Heavier corruption may alias —
//!   that is physics, not a bug — so the monitor scopes the check by the
//!   *measured* injected weight and never flags genuine
//!   beyond-minimum-distance aliasing.
//! * **conservation** — every transferred word lands in exactly one
//!   [`FaultLedger`] bucket, the coarse [`LinkReport`] counters must
//!   re-derive from the per-word traces, and path totals must equal the
//!   sum over hops.
//! * **latency-bound** — no word may consume more bus cycles at one hop
//!   than [`Protocol::worst_case_word_cycles`] allows, no matter what the
//!   fault schedule does.
//! * **ladder-monotonic** — degradation transitions must walk the
//!   configured ladder one rung at a time: demotions replay it in order
//!   at nondecreasing word indices, non-forced demotions must actually
//!   have exceeded the trigger, and promotions may only undo the rung
//!   most recently deployed, only when a recovery policy exists and the
//!   closing window was quiet.
//! * **control-safe-state** — closed-loop controller transitions must
//!   form a contiguous, justified walk over the configured operating
//!   points: relaxations step down exactly one point, only from a quiet
//!   window, and never onto a point whose advertised guarantee is below
//!   the observed error weight; retreats and emergencies must have
//!   earned their trouble rates; emergencies always land on the
//!   worst-case safe state (index 0).

use socbus_codes::DecodeStatus;
use socbus_noc::link::{DegradationPolicy, Protocol};
use socbus_noc::{ControlCause, ControlPolicy, ControlTransition, PathReport, PathStep};
use socbus_telemetry::Telemetry;

/// The invariant families the monitor checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantKind {
    /// Wrong payload delivered within the decoder's advertised guarantees.
    SilentCorruption,
    /// Accounting identity broken (ledger, counters, or path totals).
    Conservation,
    /// A word exceeded the protocol's worst-case cycle budget.
    LatencyBound,
    /// Degradation transitions out of ladder order or unjustified.
    LadderMonotonic,
    /// Controller left the safe envelope: an unjustified transition, or
    /// an operating point whose guarantee is below the observed weight.
    ControlSafeState,
}

impl InvariantKind {
    /// All kinds, in reporting order.
    #[must_use]
    pub fn all() -> [InvariantKind; 5] {
        [
            InvariantKind::SilentCorruption,
            InvariantKind::Conservation,
            InvariantKind::LatencyBound,
            InvariantKind::LadderMonotonic,
            InvariantKind::ControlSafeState,
        ]
    }

    /// Stable name (used in reports and repro files).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::SilentCorruption => "silent-corruption",
            InvariantKind::Conservation => "conservation",
            InvariantKind::LatencyBound => "latency-bound",
            InvariantKind::LadderMonotonic => "ladder-monotonic",
            InvariantKind::ControlSafeState => "control-safe-state",
        }
    }

    /// Inverse of [`InvariantKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<InvariantKind> {
        InvariantKind::all().into_iter().find(|k| k.name() == name)
    }
}

/// One observed invariant violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// The hop it broke on, or `None` for a path-level violation.
    pub hop: Option<usize>,
    /// The 0-based word index at which it broke (for end-of-run audits,
    /// the total word count).
    pub word: u64,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    /// The identity the shrinker preserves: a shrunken schedule
    /// reproduces iff it violates the same invariant on the same hop.
    #[must_use]
    pub fn key(&self) -> (InvariantKind, Option<usize>) {
        (self.kind, self.hop)
    }
}

/// Pass/fail tally for one invariant kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvariantStats {
    /// Individual checks evaluated.
    pub checked: u64,
    /// Checks that failed.
    pub violated: u64,
}

/// Per-hop accumulators the end-of-run conservation audit re-derives the
/// report counters from.
#[derive(Clone, Copy, Debug, Default)]
struct HopTally {
    retries: u64,
    detected: u64,
    corrected: u64,
}

/// The online monitor for one chaos case.
pub struct Monitor {
    budget: u64,
    policy: Option<DegradationPolicy>,
    control: Option<(ControlPolicy, Vec<u32>)>,
    words: u64,
    tallies: Vec<HopTally>,
    violations: Vec<Violation>,
    stats: [InvariantStats; 5],
    /// `stats[i].checked` already reported as a `monitor.checks`
    /// counter, so [`Monitor::flush_telemetry`] emits only the delta.
    checks_flushed: [u64; 5],
    tel: Telemetry,
    /// Worst per-hop word latency observed (cycles).
    pub worst_word_cycles: u64,
}

impl Monitor {
    /// Builds a monitor for a path of `hops` links running `protocol`,
    /// optionally with a degradation `policy`.
    #[must_use]
    pub fn new(hops: usize, protocol: Protocol, policy: Option<DegradationPolicy>) -> Self {
        Monitor {
            budget: protocol.worst_case_word_cycles(),
            policy,
            control: None,
            words: 0,
            tallies: vec![HopTally::default(); hops],
            violations: Vec::new(),
            stats: [InvariantStats::default(); 5],
            checks_flushed: [0; 5],
            tel: Telemetry::off(),
            worst_word_cycles: 0,
        }
    }

    /// Arms the control-safe-state invariant: `policy` is the controller
    /// policy the links run (or `None` for open-loop links, in which case
    /// any recorded controller transition is itself a violation), and
    /// `data_bits` recomputes each operating point's advertised guarantee
    /// independently of what the report claims.
    pub fn set_control(&mut self, policy: Option<ControlPolicy>, data_bits: usize) {
        self.control = policy.map(|p| {
            let guarantees = p.guarantees(data_bits);
            (p, guarantees)
        });
    }

    /// Attaches a telemetry handle: check tallies batch locally and
    /// [`Monitor::flush_telemetry`] reports them as `monitor.checks`
    /// counters keyed by invariant name; every violation immediately
    /// emits a `monitor.violations` counter plus a word-domain
    /// `monitor.violation` event on the control track (the `at_hop` label
    /// names the hop without claiming a cycle-domain timestamp).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Reports the `monitor.checks` counters accumulated since the last
    /// flush (safe to call repeatedly; each check is reported once).
    pub fn flush_telemetry(&mut self) {
        if !self.tel.is_enabled() {
            return;
        }
        for (idx, kind) in InvariantKind::all().iter().enumerate() {
            let delta = self.stats[idx].checked - self.checks_flushed[idx];
            if delta > 0 {
                self.tel
                    .counter("monitor.checks", &[("invariant", kind.name())], delta);
                self.checks_flushed[idx] = self.stats[idx].checked;
            }
        }
    }

    /// Violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consumes the monitor, returning all violations.
    #[must_use]
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    /// Pass/fail tally for one invariant kind.
    #[must_use]
    pub fn stats(&self, kind: InvariantKind) -> InvariantStats {
        let idx = InvariantKind::all()
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in all()");
        self.stats[idx]
    }

    fn check(
        &mut self,
        kind: InvariantKind,
        hop: Option<usize>,
        word: u64,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        let idx = InvariantKind::all()
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in all()");
        self.stats[idx].checked += 1;
        if !ok {
            self.stats[idx].violated += 1;
            if self.tel.is_enabled() {
                let hop_label = hop.map_or_else(|| "path".to_owned(), |h| h.to_string());
                let labels = [("invariant", kind.name()), ("at_hop", hop_label.as_str())];
                self.tel.counter("monitor.violations", &labels, 1);
                self.tel.event("monitor.violation", &labels, word);
            }
            self.violations.push(Violation {
                kind,
                hop,
                word,
                detail: detail(),
            });
        }
    }

    /// Audits one word's traversal of the path. `word` is its 0-based
    /// index.
    pub fn observe(&mut self, word: u64, step: &PathStep) {
        self.words = self.words.max(word + 1);
        for (hop, h) in step.hops.iter().enumerate() {
            let t = &h.trace;
            self.tallies[hop].retries += u64::from(t.retries);
            self.tallies[hop].detected +=
                u64::from(t.retries) + u64::from(t.final_status == DecodeStatus::Detected);
            self.tallies[hop].corrected += u64::from(t.final_status == DecodeStatus::Corrected);
            self.worst_word_cycles = self.worst_word_cycles.max(t.cycles);

            // Silent corruption, scoped by the measured injected weight.
            let weight = u64::from(t.max_error_weight);
            let within_correction = weight <= t.correctable_errors as u64;
            let claims_clean = matches!(
                t.final_status,
                DecodeStatus::Clean | DecodeStatus::Unchecked
            );
            let within_detection = weight <= t.detectable_errors as u64;
            let guaranteed_exact = within_correction || (within_detection && claims_clean);
            self.check(
                InvariantKind::SilentCorruption,
                Some(hop),
                word,
                !guaranteed_exact || h.exited == h.entered,
                || {
                    format!(
                        "hop {hop} delivered a wrong word inside its guarantees: \
                         injected weight {} vs t={}/d={}, final status {:?}, \
                         entered {:?} exited {:?}",
                        t.max_error_weight,
                        t.correctable_errors,
                        t.detectable_errors,
                        t.final_status,
                        h.entered,
                        h.exited,
                    )
                },
            );

            // Earned detection: a decoder may report `Detected` only when
            // the received word genuinely left its correction envelope. An
            // honest `decode_checked` flags only non-codewords, and a
            // non-codeword on the final attempt means the injected weight
            // exceeded the correctable budget — so a `Detected` with
            // `weight <= correctable` is a phantom detection (a decoder
            // crying wolf on a word it was guaranteed to deliver exactly).
            self.check(
                InvariantKind::SilentCorruption,
                Some(hop),
                word,
                t.final_status != DecodeStatus::Detected || !within_correction,
                || {
                    format!(
                        "hop {hop} reported Detected inside its correction \
                         guarantee: injected weight {} vs t={}",
                        t.max_error_weight, t.correctable_errors,
                    )
                },
            );

            // Latency bound.
            let budget = self.budget;
            self.check(
                InvariantKind::LatencyBound,
                Some(hop),
                word,
                t.cycles <= budget,
                || {
                    format!(
                        "hop {hop} spent {} cycles on one word; budget is {budget}",
                        t.cycles
                    )
                },
            );
        }
    }

    /// End-of-run audit: conservation of the fault accounting, counter
    /// re-derivation, path aggregation, and ladder monotonicity.
    pub fn finish(&mut self, report: &PathReport) {
        let words = self.words;
        for (hop, link) in report.per_hop.iter().enumerate() {
            let tally = self.tallies[hop];
            self.check(
                InvariantKind::Conservation,
                Some(hop),
                words,
                link.ledger.total() == link.delivered && link.delivered == link.offered,
                || {
                    format!(
                        "hop {hop} ledger leaks words: {:?} totals {} vs delivered {} / offered {}",
                        link.ledger,
                        link.ledger.total(),
                        link.delivered,
                        link.offered
                    )
                },
            );
            self.check(
                InvariantKind::Conservation,
                Some(hop),
                words,
                link.residual_errors == link.ledger.residual,
                || {
                    format!(
                        "hop {hop} residual counter {} disagrees with ledger residual {}",
                        link.residual_errors, link.ledger.residual
                    )
                },
            );
            self.check(
                InvariantKind::Conservation,
                Some(hop),
                words,
                link.retransmits == tally.retries
                    && link.detected == tally.detected
                    && link.corrected == tally.corrected,
                || {
                    format!(
                        "hop {hop} counters do not re-derive from traces: \
                         retransmits {} vs {}, detected {} vs {}, corrected {} vs {}",
                        link.retransmits,
                        tally.retries,
                        link.detected,
                        tally.detected,
                        link.corrected,
                        tally.corrected
                    )
                },
            );
            self.check(
                InvariantKind::Conservation,
                Some(hop),
                words,
                link.offered == report.offered,
                || {
                    format!(
                        "hop {hop} offered {} words but the path offered {}",
                        link.offered, report.offered
                    )
                },
            );

            // Ladder monotonicity.
            let ladder_ok = self.ladder_ok(link.transitions.as_slice());
            let policy = self.policy.clone();
            self.check(
                InvariantKind::LadderMonotonic,
                Some(hop),
                words,
                ladder_ok,
                || {
                    format!(
                        "hop {hop} transitions violate the ladder: {:?} (policy {policy:?})",
                        link.transitions
                    )
                },
            );

            // Controller safe state.
            let control_err = self.control_error(link.control.as_slice());
            self.check(
                InvariantKind::ControlSafeState,
                Some(hop),
                words,
                control_err.is_none(),
                || {
                    format!(
                        "hop {hop} controller left the safe envelope: {} (transitions {:?})",
                        control_err.unwrap_or_default(),
                        link.control
                    )
                },
            );
        }

        let hop_cycles: u64 = report.per_hop.iter().map(|l| l.cycles).sum();
        self.check(
            InvariantKind::Conservation,
            None,
            words,
            report.cycles == hop_cycles,
            || {
                format!(
                    "path cycles {} do not equal the per-hop sum {hop_cycles}",
                    report.cycles
                )
            },
        );
        let hop_residual: u64 = report.per_hop.iter().map(|l| l.residual_errors).sum();
        self.check(
            InvariantKind::Conservation,
            None,
            words,
            report.end_to_end_errors <= hop_residual,
            || {
                format!(
                    "end-to-end errors {} exceed the per-hop residual sum {hop_residual}: \
                     an e2e error with no hop owning it",
                    report.end_to_end_errors
                )
            },
        );
    }

    /// Transitions must walk the ladder one rung at a time, at
    /// nondecreasing word indices. Demotions deploy rungs in ladder
    /// order and non-forced ones must have earned their trigger;
    /// promotions undo exactly the most recently deployed rung, require
    /// a recovery policy, and must close on a quiet window.
    fn ladder_ok(&self, transitions: &[socbus_noc::link::LinkTransition]) -> bool {
        let Some(policy) = &self.policy else {
            return transitions.is_empty();
        };
        let mut rung = 0usize;
        let mut last_word = 0u64;
        for t in transitions {
            if t.at_word < last_word {
                return false;
            }
            last_word = t.at_word;
            if t.promoted {
                let Some(promote) = policy.promote else {
                    return false;
                };
                if rung == 0
                    || t.action != policy.ladder[rung - 1]
                    || t.forced
                    || t.trouble_rate > promote.trigger
                {
                    return false;
                }
                rung -= 1;
            } else {
                if rung >= policy.ladder.len() || t.action != policy.ladder[rung] {
                    return false;
                }
                if !t.forced && t.trouble_rate <= policy.trigger {
                    return false;
                }
                rung += 1;
            }
        }
        true
    }

    /// Audits a recorded controller transition chain against the armed
    /// control policy. Returns `None` when every safe-state clause
    /// holds, or a description of the first broken clause.
    fn control_error(&self, transitions: &[ControlTransition]) -> Option<String> {
        let Some((policy, guarantees)) = &self.control else {
            return if transitions.is_empty() {
                None
            } else {
                Some("controller transitions recorded without a control policy".to_owned())
            };
        };
        let points = policy.points.len();
        let mut prev_index = 0usize;
        let mut last_word = 0u64;
        for (i, t) in transitions.iter().enumerate() {
            if t.from >= points || t.to >= points {
                return Some(format!(
                    "transition {i} indexes out of range: {} -> {} with {points} points",
                    t.from, t.to
                ));
            }
            if t.from != prev_index {
                return Some(format!(
                    "transition {i} breaks the chain: from {} but the controller was at {prev_index}",
                    t.from
                ));
            }
            if t.at_word < last_word {
                return Some(format!(
                    "transition {i} runs time backwards: word {} after {last_word}",
                    t.at_word
                ));
            }
            if t.guarantee != guarantees[t.to] {
                return Some(format!(
                    "transition {i} misstates the guarantee of point {}: {} vs {}",
                    t.to, t.guarantee, guarantees[t.to]
                ));
            }
            match t.cause {
                ControlCause::Relax => {
                    if t.to != t.from + 1 {
                        return Some(format!(
                            "transition {i} relaxes by more than one point: {} -> {}",
                            t.from, t.to
                        ));
                    }
                    if t.trouble_rate > policy.lower_trouble {
                        return Some(format!(
                            "transition {i} relaxed out of a noisy window: rate {} > lower {}",
                            t.trouble_rate, policy.lower_trouble
                        ));
                    }
                    if guarantees[t.to] < t.observed_weight {
                        return Some(format!(
                            "transition {i} relaxed below the observed weight: \
                             guarantee {} < weight {}",
                            guarantees[t.to], t.observed_weight
                        ));
                    }
                }
                ControlCause::Retreat => {
                    if t.to + 1 != t.from {
                        return Some(format!(
                            "transition {i} retreats by more than one point: {} -> {}",
                            t.from, t.to
                        ));
                    }
                    if t.trouble_rate <= policy.raise_trouble {
                        return Some(format!(
                            "transition {i} retreated without trouble: rate {} <= raise {}",
                            t.trouble_rate, policy.raise_trouble
                        ));
                    }
                }
                ControlCause::Emergency => {
                    if t.to != 0 {
                        return Some(format!(
                            "transition {i} declared an emergency but landed on point {}",
                            t.to
                        ));
                    }
                    if t.trouble_rate < policy.storm_trouble {
                        return Some(format!(
                            "transition {i} declared an emergency without a storm: \
                             rate {} < storm {}",
                            t.trouble_rate, policy.storm_trouble
                        ));
                    }
                }
            }
            prev_index = t.to;
            last_word = t.at_word;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbus_codes::Scheme;
    use socbus_noc::link::{DegradationAction, LinkConfig};
    use socbus_noc::traffic::UniformTraffic;
    use socbus_noc::{PathConfig, PathSim};

    fn drive(cfg: &PathConfig, words: usize, monitor: &mut Monitor) -> PathReport {
        let mut sim = PathSim::new(cfg, 5);
        for (i, data) in UniformTraffic::new(cfg.link.data_bits, 3)
            .take(words)
            .enumerate()
        {
            let step = sim.step(data);
            monitor.observe(i as u64, &step);
        }
        let report = sim.finish();
        monitor.finish(&report);
        report
    }

    #[test]
    fn honest_noisy_path_passes_all_invariants() {
        let proto = Protocol::DetectRetransmit {
            rtt_cycles: 3,
            max_retries: 3,
        };
        let cfg = PathConfig::new(
            3,
            LinkConfig::new(Scheme::ExtHamming, 16, 3e-3).with_protocol(proto),
        );
        let mut monitor = Monitor::new(3, proto, None);
        drive(&cfg, 4_000, &mut monitor);
        assert_eq!(monitor.violations(), &[] as &[Violation]);
        assert!(monitor.stats(InvariantKind::SilentCorruption).checked >= 12_000);
        assert!(monitor.stats(InvariantKind::Conservation).checked > 0);
    }

    #[test]
    fn sabotaged_decoder_is_caught_as_silent_corruption() {
        let cfg = PathConfig::new(1, LinkConfig::new(Scheme::Sabotaged, 16, 5e-3));
        let mut monitor = Monitor::new(1, Protocol::Fec, None);
        drive(&cfg, 4_000, &mut monitor);
        assert!(
            monitor
                .violations()
                .iter()
                .any(|v| v.kind == InvariantKind::SilentCorruption),
            "the planted lie must be flagged: {:?}",
            monitor.violations().first()
        );
    }

    #[test]
    fn heavy_aliasing_on_an_honest_code_is_not_flagged() {
        // ε far beyond any guarantee: Hamming will alias, but every alias
        // comes with injected weight > d_min-1, so the monitor stays calm.
        let cfg = PathConfig::new(2, LinkConfig::new(Scheme::Hamming, 16, 0.05));
        let mut monitor = Monitor::new(2, Protocol::Fec, None);
        let report = drive(&cfg, 4_000, &mut monitor);
        assert!(report.end_to_end_errors > 0, "this ε must cause residuals");
        assert_eq!(
            monitor.violations(),
            &[] as &[Violation],
            "aliasing beyond the guarantees is physics, not a violation"
        );
    }

    #[test]
    fn invariant_names_round_trip() {
        for kind in InvariantKind::all() {
            assert_eq!(InvariantKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(InvariantKind::from_name("nope"), None);
    }

    #[test]
    fn ladder_prefix_rules_are_enforced() {
        let policy = DegradationPolicy {
            window: 100,
            trigger: 0.2,
            ladder: vec![
                DegradationAction::RaiseSwing { factor: 1.3 },
                DegradationAction::SwitchScheme(Scheme::Dap),
            ],
            promote: None,
        };
        let monitor = Monitor::new(1, Protocol::Fec, Some(policy.clone()));
        use socbus_noc::link::LinkTransition;
        let raise = LinkTransition {
            at_word: 10,
            trouble_rate: 0.5,
            action: DegradationAction::RaiseSwing { factor: 1.3 },
            forced: false,
            promoted: false,
        };
        let switch = LinkTransition {
            at_word: 20,
            trouble_rate: 0.0,
            action: DegradationAction::SwitchScheme(Scheme::Dap),
            forced: true,
            promoted: false,
        };
        assert!(monitor.ladder_ok(&[]));
        assert!(monitor.ladder_ok(&[raise]));
        assert!(monitor.ladder_ok(&[raise, switch]));
        // Out of order: the switch may not fire first.
        assert!(!monitor.ladder_ok(&[switch]));
        // Unearned: non-forced transition at rate below the trigger.
        let lazy = LinkTransition {
            trouble_rate: 0.1,
            forced: false,
            ..raise
        };
        assert!(!monitor.ladder_ok(&[lazy]));
        // Time must not run backwards.
        let early_switch = LinkTransition {
            at_word: 5,
            ..switch
        };
        assert!(!monitor.ladder_ok(&[raise, early_switch]));
        // A promotion against a policy with no recovery clause is illegal.
        let promote_back = LinkTransition {
            at_word: 30,
            trouble_rate: 0.0,
            action: DegradationAction::SwitchScheme(Scheme::Dap),
            forced: false,
            promoted: true,
        };
        assert!(!monitor.ladder_ok(&[raise, switch, promote_back]));
    }

    #[test]
    fn promotions_must_undo_the_last_deployed_rung() {
        use socbus_noc::link::{LinkTransition, PromotePolicy};
        let policy = DegradationPolicy {
            window: 100,
            trigger: 0.2,
            ladder: vec![
                DegradationAction::RaiseSwing { factor: 1.3 },
                DegradationAction::SwitchScheme(Scheme::Dap),
            ],
            promote: Some(PromotePolicy {
                quiet_windows: 2,
                trigger: 0.05,
            }),
        };
        let monitor = Monitor::new(1, Protocol::Fec, Some(policy));
        let raise = LinkTransition {
            at_word: 10,
            trouble_rate: 0.5,
            action: DegradationAction::RaiseSwing { factor: 1.3 },
            forced: false,
            promoted: false,
        };
        let switch = LinkTransition {
            at_word: 20,
            trouble_rate: 0.5,
            action: DegradationAction::SwitchScheme(Scheme::Dap),
            forced: false,
            promoted: false,
        };
        let undo_switch = LinkTransition {
            at_word: 40,
            trouble_rate: 0.0,
            action: DegradationAction::SwitchScheme(Scheme::Dap),
            forced: false,
            promoted: true,
        };
        let undo_raise = LinkTransition {
            at_word: 60,
            trouble_rate: 0.0,
            action: DegradationAction::RaiseSwing { factor: 1.3 },
            forced: false,
            promoted: true,
        };
        // Full deploy, full recovery, and a re-deploy are all legal.
        assert!(monitor.ladder_ok(&[raise, switch, undo_switch, undo_raise]));
        let redeploy = LinkTransition {
            at_word: 80,
            ..switch
        };
        assert!(monitor.ladder_ok(&[raise, switch, undo_switch, redeploy]));
        // Promoting a rung that is not the most recently deployed is not.
        assert!(!monitor.ladder_ok(&[raise, switch, undo_raise]));
        // Promoting below the base is not.
        assert!(!monitor.ladder_ok(&[undo_raise]));
        // Promoting out of a noisy window is not.
        let noisy_undo = LinkTransition {
            trouble_rate: 0.5,
            ..undo_switch
        };
        assert!(!monitor.ladder_ok(&[raise, switch, noisy_undo]));
    }

    #[test]
    fn control_chain_clauses_are_each_enforced() {
        use socbus_noc::{ControlCause, ControlPolicy, ControlTransition, OperatingPoint};
        let policy = ControlPolicy {
            points: vec![
                OperatingPoint {
                    swing: 1.4,
                    scheme: Scheme::ExtHamming,
                },
                OperatingPoint {
                    swing: 1.0,
                    scheme: Scheme::Parity,
                },
            ],
            target_wer: 1e-2,
            window: 10,
            dwell: 2,
            lower_trouble: 0.1,
            raise_trouble: 0.3,
            storm_trouble: 0.6,
        };
        let mut monitor = Monitor::new(1, Protocol::Fec, None);
        monitor.set_control(Some(policy), 16);
        let relax = ControlTransition {
            at_word: 20,
            from: 0,
            to: 1,
            trouble_rate: 0.0,
            observed_weight: 0,
            guarantee: 1,
            cause: ControlCause::Relax,
        };
        let retreat = ControlTransition {
            at_word: 40,
            from: 1,
            to: 0,
            trouble_rate: 0.5,
            observed_weight: 2,
            guarantee: 2,
            cause: ControlCause::Retreat,
        };
        let emergency = ControlTransition {
            at_word: 60,
            from: 1,
            to: 0,
            trouble_rate: 0.8,
            observed_weight: 3,
            guarantee: 2,
            cause: ControlCause::Emergency,
        };
        assert_eq!(monitor.control_error(&[]), None);
        assert_eq!(monitor.control_error(&[relax, retreat]), None);
        assert_eq!(monitor.control_error(&[relax, emergency]), None);
        // Chain continuity: the controller starts at index 0.
        assert!(monitor.control_error(&[retreat]).is_some());
        // A relax out of a noisy window is unjustified.
        let noisy_relax = ControlTransition {
            trouble_rate: 0.2,
            ..relax
        };
        assert!(monitor.control_error(&[noisy_relax]).is_some());
        // A relax below the observed error weight breaks the safe state.
        let reckless = ControlTransition {
            observed_weight: 2,
            ..relax
        };
        assert!(monitor.control_error(&[reckless]).is_some());
        // The recorded guarantee must match the recomputed one.
        let liar = ControlTransition {
            guarantee: 9,
            ..relax
        };
        assert!(monitor.control_error(&[liar]).is_some());
        // An emergency must land on the safe state with a storm rate.
        let mild = ControlTransition {
            trouble_rate: 0.4,
            ..emergency
        };
        assert!(monitor.control_error(&[relax, mild]).is_some());
        // Without a policy, any recorded transition is a violation.
        let mut bare = Monitor::new(1, Protocol::Fec, None);
        bare.set_control(None, 16);
        assert!(bare.control_error(&[relax]).is_some());
        assert_eq!(bare.control_error(&[]), None);
    }
}
