//! Fault schedules: timed activation scripts for chaos runs.
//!
//! A [`FaultSchedule`] is a sorted list of [`ScheduleEvent`]s — "at word
//! `w`, switch this fault process on / off / force a degradation rung".
//! Schedules are plain data: the runner interprets them against a live
//! [`socbus_noc::PathSim`], and the shrinker manipulates them as lists
//! (dropping events must always yield another valid schedule, which is
//! why deactivating an unknown id is defined as a no-op).
//!
//! [`FaultSchedule::random`] draws a schedule from one of four seeded
//! families — burst trains, droop storms, hard-fault windows, and a
//! mixed-mayhem blend — covering every [`FaultSpec`] variant plus
//! mid-flight degradation triggers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socbus_channel::{BridgeMode, FaultSpec};

/// One action in a fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleAction {
    /// Pushes `spec` onto hop `hop`'s injector under the handle `id`.
    ///
    /// For [`FaultSpec::Droop`] the spec's `start` is interpreted
    /// *relative to the activation moment*: the runner rewrites it to the
    /// hop's event clock at activation time, so a droop window scheduled
    /// "20 cycles after activation" survives schedule shrinking intact.
    Activate {
        /// Handle later `Deactivate` events refer to. Re-activating a
        /// live id rebinds the handle to the new slot (the old process
        /// keeps running until deactivated by some other means — ids are
        /// names, not resources).
        id: u32,
        /// Hop whose injector receives the process.
        hop: usize,
        /// The fault process to activate.
        spec: FaultSpec,
    },
    /// Disables the process previously activated under `id`. Unknown or
    /// already-deactivated ids are a no-op, so a shrunk schedule that
    /// lost the matching `Activate` stays runnable.
    Deactivate {
        /// Handle of the activation to switch off.
        id: u32,
    },
    /// Forces the next degradation-ladder rung on hop `hop` (no-op when
    /// the hop has no policy or the ladder is exhausted).
    ForceDegrade {
        /// Hop to degrade.
        hop: usize,
    },
}

/// One timed action: fires just before word `at_word` (0-based) is sent.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleEvent {
    /// Word index before which the action fires; events beyond the run
    /// length never fire.
    pub at_word: u64,
    /// The action.
    pub action: ScheduleAction,
}

/// A whole fault schedule, kept sorted by `at_word` (stable, so events
/// sharing a word fire in insertion order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// The events, in firing order.
    pub events: Vec<ScheduleEvent>,
}

/// The shape of a random schedule draw.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleParams {
    /// Run length the schedule is drawn for (events land in `0..words`).
    pub words: u64,
    /// Hops available for targeting.
    pub hops: usize,
    /// Wire count of the coded bus (bounds hard-fault wire indices).
    pub wires: usize,
}

/// The four families of randomized schedules the soak campaign draws
/// from. Each stresses a different failure signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleFamily {
    /// Trains of Gilbert–Elliott burst windows marching across hops.
    BurstTrain,
    /// Overlapping supply-droop windows (ε multiplied 30–300×).
    DroopStorm,
    /// Stuck-at and bridging defects that appear and heal.
    HardWindow,
    /// Everything at once, plus forced mid-flight degradation.
    MixedMayhem,
}

impl ScheduleFamily {
    /// All families, in campaign order.
    #[must_use]
    pub fn all() -> [ScheduleFamily; 4] {
        [
            ScheduleFamily::BurstTrain,
            ScheduleFamily::DroopStorm,
            ScheduleFamily::HardWindow,
            ScheduleFamily::MixedMayhem,
        ]
    }

    /// Stable name (used in reports and repro files).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScheduleFamily::BurstTrain => "burst_train",
            ScheduleFamily::DroopStorm => "droop_storm",
            ScheduleFamily::HardWindow => "hard_window",
            ScheduleFamily::MixedMayhem => "mixed_mayhem",
        }
    }

    /// Inverse of [`ScheduleFamily::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<ScheduleFamily> {
        ScheduleFamily::all().into_iter().find(|f| f.name() == name)
    }
}

impl FaultSchedule {
    /// Draws a seeded random schedule from `family`. The same
    /// `(family, params, seed)` triple always yields the same schedule.
    #[must_use]
    pub fn random(family: ScheduleFamily, params: &ScheduleParams, seed: u64) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut next_id = 0u32;
        match family {
            ScheduleFamily::BurstTrain => {
                push_bursts(&mut events, &mut next_id, params, &mut rng, 4)
            }
            ScheduleFamily::DroopStorm => {
                push_droops(&mut events, &mut next_id, params, &mut rng, 4)
            }
            ScheduleFamily::HardWindow => {
                push_hard_windows(&mut events, &mut next_id, params, &mut rng, 3)
            }
            ScheduleFamily::MixedMayhem => {
                push_bursts(&mut events, &mut next_id, params, &mut rng, 2);
                push_droops(&mut events, &mut next_id, params, &mut rng, 2);
                push_hard_windows(&mut events, &mut next_id, params, &mut rng, 2);
                let degrades = rng.gen_range(1usize..=2);
                for _ in 0..degrades {
                    events.push(ScheduleEvent {
                        at_word: rng.gen_range(0..params.words.max(1)),
                        action: ScheduleAction::ForceDegrade {
                            hop: rng.gen_range(0..params.hops),
                        },
                    });
                }
            }
        }
        let mut schedule = FaultSchedule { events };
        schedule.sort();
        schedule
    }

    /// Restores firing order after editing the event list (stable by
    /// `at_word`).
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| e.at_word);
    }
}

/// A window `[at, at + len)` inside the run, with room left so the
/// aftermath of a deactivation is still observed.
fn window(params: &ScheduleParams, rng: &mut StdRng) -> (u64, u64) {
    let words = params.words.max(4);
    let at = rng.gen_range(0..words * 3 / 4);
    let len = rng.gen_range(words / 20 + 1..=words / 4 + 1);
    (at, len)
}

fn push_bursts(
    events: &mut Vec<ScheduleEvent>,
    next_id: &mut u32,
    params: &ScheduleParams,
    rng: &mut StdRng,
    max_n: usize,
) {
    let n = rng.gen_range(1..=max_n);
    for _ in 0..n {
        let (at, len) = window(params, rng);
        let id = *next_id;
        *next_id += 1;
        events.push(ScheduleEvent {
            at_word: at,
            action: ScheduleAction::Activate {
                id,
                hop: rng.gen_range(0..params.hops),
                spec: FaultSpec::Burst {
                    eps_good: rng.gen_range(0.0..2e-3),
                    eps_bad: rng.gen_range(0.02..0.3),
                    p_enter: rng.gen_range(0.01..0.2),
                    p_exit: rng.gen_range(0.05..0.5),
                },
            },
        });
        events.push(ScheduleEvent {
            at_word: at + len,
            action: ScheduleAction::Deactivate { id },
        });
    }
}

fn push_droops(
    events: &mut Vec<ScheduleEvent>,
    next_id: &mut u32,
    params: &ScheduleParams,
    rng: &mut StdRng,
    max_n: usize,
) {
    let n = rng.gen_range(1..=max_n);
    for _ in 0..n {
        let (at, len) = window(params, rng);
        let id = *next_id;
        *next_id += 1;
        events.push(ScheduleEvent {
            at_word: at,
            action: ScheduleAction::Activate {
                id,
                hop: rng.gen_range(0..params.hops),
                spec: FaultSpec::Droop {
                    eps: rng.gen_range(1e-4..2e-3),
                    scale: rng.gen_range(30.0..300.0),
                    // Relative to activation (see ScheduleAction docs);
                    // retransmissions inside the window also burn cycles.
                    start: rng.gen_range(0..8u64),
                    duration: rng.gen_range(20..200u64),
                },
            },
        });
        events.push(ScheduleEvent {
            at_word: at + len,
            action: ScheduleAction::Deactivate { id },
        });
    }
}

fn push_hard_windows(
    events: &mut Vec<ScheduleEvent>,
    next_id: &mut u32,
    params: &ScheduleParams,
    rng: &mut StdRng,
    max_n: usize,
) {
    let n = rng.gen_range(1..=max_n);
    for _ in 0..n {
        let (at, len) = window(params, rng);
        let id = *next_id;
        *next_id += 1;
        let spec = if rng.gen_bool(0.5) {
            FaultSpec::StuckAt {
                wire: rng.gen_range(0..params.wires),
                value: rng.gen_bool(0.5),
            }
        } else {
            FaultSpec::Bridge {
                // A bridge shorts `wire` and `wire + 1`.
                wire: rng.gen_range(0..params.wires.saturating_sub(1).max(1)),
                mode: if rng.gen_bool(0.5) {
                    BridgeMode::And
                } else {
                    BridgeMode::Or
                },
            }
        };
        events.push(ScheduleEvent {
            at_word: at,
            action: ScheduleAction::Activate {
                id,
                hop: rng.gen_range(0..params.hops),
                spec,
            },
        });
        events.push(ScheduleEvent {
            at_word: at + len,
            action: ScheduleAction::Deactivate { id },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScheduleParams {
        ScheduleParams {
            words: 2_000,
            hops: 3,
            wires: 21,
        }
    }

    #[test]
    fn random_schedules_are_deterministic_per_seed() {
        for family in ScheduleFamily::all() {
            let a = FaultSchedule::random(family, &params(), 42);
            let b = FaultSchedule::random(family, &params(), 42);
            assert_eq!(a, b, "{family:?} must be reproducible");
            let c = FaultSchedule::random(family, &params(), 43);
            assert_ne!(a, c, "{family:?} must vary with the seed");
        }
    }

    #[test]
    fn schedules_are_sorted_and_in_range() {
        for family in ScheduleFamily::all() {
            for seed in 0..20 {
                let s = FaultSchedule::random(family, &params(), seed);
                assert!(!s.events.is_empty());
                for pair in s.events.windows(2) {
                    assert!(pair[0].at_word <= pair[1].at_word);
                }
                for e in &s.events {
                    match &e.action {
                        ScheduleAction::Activate { hop, spec, .. } => {
                            assert!(*hop < params().hops);
                            if let FaultSpec::StuckAt { wire, .. } = spec {
                                assert!(*wire < params().wires);
                            }
                        }
                        ScheduleAction::ForceDegrade { hop } => assert!(*hop < params().hops),
                        ScheduleAction::Deactivate { .. } => {}
                    }
                }
            }
        }
    }

    #[test]
    fn family_names_round_trip() {
        for family in ScheduleFamily::all() {
            assert_eq!(ScheduleFamily::from_name(family.name()), Some(family));
        }
        assert_eq!(ScheduleFamily::from_name("nope"), None);
    }

    #[test]
    fn mixed_mayhem_includes_degradation_triggers() {
        let mut saw_force = false;
        for seed in 0..10 {
            let s = FaultSchedule::random(ScheduleFamily::MixedMayhem, &params(), seed);
            saw_force |= s
                .events
                .iter()
                .any(|e| matches!(e.action, ScheduleAction::ForceDegrade { .. }));
        }
        assert!(saw_force, "mixed mayhem must exercise force-degrade");
    }
}
