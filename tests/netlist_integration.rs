//! Cross-crate netlist integration: the gate-level codecs versus their
//! golden models under traffic, and the physical sanity of the measured
//! costs that feed every table in the paper reproduction.

use socbus::codes::Scheme;
use socbus::model::Word;
use socbus::netlist::cell::CellLibrary;
use socbus::netlist::cost::codec_cost;
use socbus::netlist::synthesize;

#[test]
fn every_scheme_netlist_matches_golden_model_under_traffic() {
    for scheme in Scheme::table3() {
        let k = 8;
        let mut pair = synthesize(scheme, k);
        let mut enc = scheme.build(k);
        let mut dec = scheme.build(k);
        let mut x: u128 = 0x9E3779B97F4A7C15;
        for _ in 0..120 {
            x = x.wrapping_mul(0x5DEECE66D).wrapping_add(11);
            let d = Word::from_bits(x & 0xFF, k);
            let golden_cw = enc.encode(d);
            assert_eq!(pair.encoder.step(d), golden_cw, "{} encode", scheme.name());
            let golden_out = dec.decode(golden_cw);
            assert_eq!(
                pair.decoder.step(golden_cw).slice(0, k),
                golden_out,
                "{} decode",
                scheme.name()
            );
        }
    }
}

#[test]
fn codec_costs_scale_sensibly_with_width() {
    let lib = CellLibrary::cmos_130nm();
    for scheme in [Scheme::Hamming, Scheme::Dap, Scheme::BusInvert(1)] {
        let c8 = codec_cost(scheme, 8, &lib, 200, 3);
        let c32 = codec_cost(scheme, 32, &lib, 200, 3);
        assert!(c32.area > c8.area, "{}", scheme.name());
        assert!(
            c32.energy_per_transfer > c8.energy_per_transfer,
            "{}",
            scheme.name()
        );
        // Delay grows sub-linearly (tree logic), not 4x.
        assert!(
            c32.encoder_delay + c32.decoder_delay
                < 4.0 * (c8.encoder_delay + c8.decoder_delay) + 200e-12,
            "{}",
            scheme.name()
        );
    }
}

#[test]
fn wiring_only_schemes_cost_nothing() {
    let lib = CellLibrary::cmos_130nm();
    for scheme in [Scheme::Uncoded, Scheme::Shielding, Scheme::Duplication] {
        let c = codec_cost(scheme, 16, &lib, 100, 1);
        assert_eq!(c.area, 0.0, "{}", scheme.name());
        assert_eq!(c.total_delay(), 0.0, "{}", scheme.name());
    }
}

#[test]
fn decoder_sees_coded_traffic_in_power_model() {
    // A duplication decoder fed with *encoded* words must report strictly
    // lower input-side switching than a Hamming decoder at similar width —
    // the reason codec energies in the tables must be simulated with
    // realistic stimuli, not uniform noise.
    let lib = CellLibrary::cmos_130nm();
    let dap = codec_cost(Scheme::Dap, 16, &lib, 1000, 9);
    let bsc = codec_cost(Scheme::Bsc, 16, &lib, 1000, 9);
    // Same code content; BSC adds shift muxes — energy strictly higher.
    assert!(bsc.energy_per_transfer > dap.energy_per_transfer);
}
