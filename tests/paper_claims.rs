//! End-to-end checks of the paper's headline quantitative claims, run
//! through the full stack: codes → netlist synthesis → bus model →
//! voltage scaling. Absolute picoseconds differ from the authors' 0.13-µm
//! flow; these tests pin the *shape* — who wins, by roughly what factor,
//! and in which direction each sweep moves.

use socbus::model::{BusGeometry, Environment, RepeaterConfig};
use socbus::netlist::cell::CellLibrary;
use socbus_bench::designs::{design_point, DesignOptions};
use socbus_bench::sweeps::{optimal_repeater_size, sweep_lambda, sweep_length, Metric};
use socbus_codes::Scheme;

fn opts() -> DesignOptions {
    DesignOptions {
        energy_samples: 30_000,
        power_samples: 300,
        ..DesignOptions::default()
    }
}

fn scaled_opts() -> DesignOptions {
    DesignOptions {
        scale_to: Some(1e-20),
        ..opts()
    }
}

#[test]
fn headline_dapx_speedup_and_savings_over_hamming_4bit() {
    // Paper abstract: "up to 2.17x speed-up and 33% energy savings over a
    // bus employing Hamming code" for a 10-mm 4-bit bus. Accept the same
    // regime: >1.5x speed-up, >15% savings at the favorable end of the λ
    // range.
    let lib = CellLibrary::cmos_130nm();
    let ham = design_point(Scheme::Hamming, 4, &lib, &opts());
    let dapx = design_point(Scheme::Dapx, 4, &lib, &opts());
    let env = Environment::new(BusGeometry::new(10.0, 4.6));
    let s = socbus::model::speedup(&ham, &dapx, &env);
    let e = socbus::model::energy_savings(&ham, &dapx, &env);
    assert!(s > 1.5, "DAPX speed-up {s}");
    assert!(e > 0.15, "DAPX savings {e}");
}

#[test]
fn headline_32bit_low_swing_beats_uncoded() {
    // Paper abstract: 32-bit 10-mm bus, "1.7x speed-up and 27% reduction
    // in energy ... over an uncoded bus by employing low-swing signaling
    // without any loss in reliability". DAPX is the vehicle; accept
    // >1.25x and >25%.
    let lib = CellLibrary::cmos_130nm();
    let unc = design_point(Scheme::Uncoded, 32, &lib, &scaled_opts());
    let dapx = design_point(Scheme::Dapx, 32, &lib, &scaled_opts());
    let env = Environment::new(BusGeometry::new(10.0, 2.8));
    let s = socbus::model::speedup(&unc, &dapx, &env);
    let e = socbus::model::energy_savings(&unc, &dapx, &env);
    assert!(s > 1.25, "DAPX speed-up over uncoded {s}");
    assert!(e > 0.25, "DAPX savings over uncoded {e}");
}

#[test]
fn speedup_orderings_match_table2() {
    // DAPX > DAP > BSC on speed; BIH and FTC+HC dominated by Hamming/DAP.
    let lib = CellLibrary::cmos_130nm();
    let env = Environment::new(BusGeometry::new(10.0, 2.8));
    let o = opts();
    let ham = design_point(Scheme::Hamming, 4, &lib, &o);
    let s = |sch: Scheme| {
        let d = design_point(sch, 4, &lib, &o);
        socbus::model::speedup(&ham, &d, &env)
    };
    let (dapx, dap, bsc, bih) = (
        s(Scheme::Dapx),
        s(Scheme::Dap),
        s(Scheme::Bsc),
        s(Scheme::Bih),
    );
    assert!(dapx > dap && dap > bsc, "dapx {dapx} dap {dap} bsc {bsc}");
    assert!(bih < 1.0, "BIH is dominated in this technology: {bih}");
}

#[test]
fn dapx_speedup_rises_with_lambda_and_length() {
    // Fig. 9 trends.
    let series = sweep_lambda(
        &[Scheme::Dapx],
        Scheme::Hamming,
        4,
        10.0,
        Metric::Speedup,
        &opts(),
        None,
    );
    let pts = &series[0].1;
    assert!(pts.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9), "λ trend");
    let series = sweep_length(
        &[Scheme::Dap],
        Scheme::Hamming,
        4,
        2.8,
        Metric::Speedup,
        &opts(),
    );
    let pts = &series[0].1;
    assert!(pts.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9), "L trend");
}

#[test]
fn hammingx_masking_benefit_shrinks_with_length() {
    // Fig. 9(b): HammingX's fixed masked delay amortizes away.
    let series = sweep_length(
        &[Scheme::HammingX],
        Scheme::Hamming,
        4,
        2.8,
        Metric::Speedup,
        &opts(),
    );
    let pts = &series[0].1;
    assert!(pts.first().unwrap().1 > pts.last().unwrap().1);
    assert!(pts.iter().all(|&(_, s)| s > 1.0 && s < 1.15));
}

#[test]
fn l_crit_exists_for_cac_codes_on_32bit() {
    // Fig. 13(b): at 6 mm several CAC+ECC codes lose to uncoded; by 14 mm
    // they win — the paper's L_crit between 6 and 14 mm.
    let series = sweep_length(
        &[Scheme::Dap],
        Scheme::Uncoded,
        32,
        2.8,
        Metric::Speedup,
        &scaled_opts(),
    );
    let pts = &series[0].1;
    let at6 = pts.iter().find(|&&(l, _)| l == 6.0).unwrap().1;
    let at14 = pts.iter().find(|&&(l, _)| l == 14.0).unwrap().1;
    assert!(at6 < 1.0, "below L_crit: {at6}");
    assert!(at14 > 1.2, "above L_crit: {at14}");
}

#[test]
fn repeaters_trade_energy_for_speed_and_coding_does_not() {
    // Fig. 12: repeater insertion speeds up ~3x at a big energy cost;
    // DAPX alone speeds up with energy *savings*; both combine.
    let lib = CellLibrary::cmos_130nm();
    let o = opts();
    let ham = design_point(Scheme::Hamming, 4, &lib, &o);
    let dapx = design_point(Scheme::Dapx, 4, &lib, &o);
    let plain = Environment::new(BusGeometry::new(10.0, 2.8));
    let size = optimal_repeater_size(10.0, 2.8, 2.0);
    let rep = Environment::new(BusGeometry::new(10.0, 2.8))
        .with_repeaters(RepeaterConfig::new(2.0, size));

    let rep_speed = ham.total_delay(&plain) / ham.total_delay(&rep);
    assert!(
        rep_speed > 2.0 && rep_speed < 4.5,
        "repeater speed-up {rep_speed}"
    );
    let rep_energy = ham.total_energy(&rep) / ham.total_energy(&plain);
    assert!(rep_energy > 1.3, "repeaters must cost energy: {rep_energy}");

    let code_speed = socbus::model::speedup(&ham, &dapx, &plain);
    let code_savings = socbus::model::energy_savings(&ham, &dapx, &plain);
    assert!(code_speed > 1.5 && code_savings > 0.1);

    let both = ham.total_delay(&plain) / dapx.total_delay(&rep);
    assert!(both > rep_speed, "coding and repeaters compose: {both}");
}

#[test]
fn scaled_vdd_values_near_paper_table3() {
    // Table III: DAP family at ~0.86 V, Hamming family close by.
    let lib = CellLibrary::cmos_130nm();
    let o = scaled_opts();
    let dap = design_point(Scheme::Dap, 32, &lib, &o);
    assert!((dap.vdd - 0.86).abs() < 0.03, "DAP vdd {}", dap.vdd);
    let ham = design_point(Scheme::Hamming, 32, &lib, &o);
    assert!((0.82..0.92).contains(&ham.vdd), "Hamming vdd {}", ham.vdd);
}

#[test]
fn bi_codes_give_no_energy_savings_on_32bit_bus() {
    // Fig. 14(a)'s negative result, reproduced with codec overheads.
    let lib = CellLibrary::cmos_130nm();
    let o = scaled_opts();
    let env = Environment::new(BusGeometry::new(10.0, 2.8));
    let unc = design_point(Scheme::Uncoded, 32, &lib, &o);
    let bi1 = design_point(Scheme::BusInvert(1), 32, &lib, &o);
    let e = socbus::model::energy_savings(&unc, &bi1, &env);
    assert!(e < 0.05, "BI(1) savings should be ~none, got {e}");
}
