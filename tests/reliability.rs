//! Cross-crate reliability integration: analytic models (socbus-model),
//! the Monte-Carlo channel (socbus-channel), and the real codecs
//! (socbus-codes) must all agree.

use socbus::channel::montecarlo::word_error_rate;
use socbus::channel::scaling::{scale_voltage, ResidualModel};
use socbus::channel::GaussianChannel;
use socbus::codes::Scheme;
use socbus::model::{noise, Word};

#[test]
fn gaussian_channel_through_real_codec_matches_flip_model() {
    // Drive DAP through the physical-voltage channel and compare with the
    // analytic residual at the channel's own ε.
    let mut enc = Scheme::Dap.build(8);
    let mut dec = Scheme::Dap.build(8);
    let mut ch = GaussianChannel::new(1.2, 0.24, 99); // ε ≈ 6.2e-3
    let eps = ch.bit_error_probability();
    let trials = 200_000u64;
    let mut failures = 0u64;
    let mut x: u128 = 1;
    for _ in 0..trials {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let d = Word::from_bits(x >> 64, 8);
        if dec.decode(ch.transmit(enc.encode(d))) != d {
            failures += 1;
        }
    }
    let rate = failures as f64 / trials as f64;
    let expect = noise::word_error_dap_exact(8, eps);
    assert!(
        (rate - expect).abs() / expect < 0.25,
        "measured {rate} vs analytic {expect} (eps {eps})"
    );
}

#[test]
fn voltage_scaling_is_self_consistent_with_q_model() {
    // At the scaled swing, the bit-error rate implied by the calibrated σ
    // must reproduce the ε the solver targeted.
    let d = scale_voltage(ResidualModel::Dap { k: 32 }, 32, 1e-20, 1.2);
    let eps_check = socbus::model::bit_error_probability(d.scaled_vdd, d.sigma);
    assert!(
        (eps_check - d.eps_scaled).abs() / d.eps_scaled < 1e-6,
        "eps {} vs target {}",
        eps_check,
        d.eps_scaled
    );
    // And the residual at that ε meets the target.
    let resid = ResidualModel::Dap { k: 32 }.residual(d.eps_scaled);
    assert!((resid - 1e-20).abs() / 1e-20 < 1e-6);
}

#[test]
fn redundancy_ranking_is_reflected_in_scaled_swing() {
    // More residual exposure (bigger multiplier) needs higher swing:
    // DAPBI (k=33) > DAP (k=32) > Hamming's C(38,2) exposure ordering.
    let p = 1e-20;
    let ham = scale_voltage(ResidualModel::DoubleError { wires: 38 }, 32, p, 1.2).scaled_vdd;
    let dap = scale_voltage(ResidualModel::Dap { k: 32 }, 32, p, 1.2).scaled_vdd;
    let dapbi = scale_voltage(ResidualModel::Dap { k: 33 }, 32, p, 1.2).scaled_vdd;
    assert!(dap > ham, "3k(k+1)/2 > C(38,2): dap {dap} ham {ham}");
    assert!(dapbi > dap);
    // All within the paper's 0.85-0.90 V band.
    for v in [ham, dap, dapbi] {
        assert!((0.82..0.92).contains(&v), "swing {v}");
    }
}

#[test]
fn monte_carlo_tracks_quadratic_scaling_of_ecc() {
    // Halving ε quarters the ECC residual (within noise).
    let hi = word_error_rate(Scheme::Hamming, 8, 8e-3, 300_000, 5);
    let lo = word_error_rate(Scheme::Hamming, 8, 4e-3, 300_000, 6);
    let ratio = hi.rate / lo.rate;
    assert!(
        (2.8..5.5).contains(&ratio),
        "quadratic residual expected ~4x, got {ratio}"
    );
}

#[test]
fn detection_status_supports_link_protocols() {
    use socbus::codes::DecodeStatus;
    let mut code = Scheme::ExtHamming.build(8);
    let d = Word::from_bits(0x6B, 8);
    let cw = code.encode(d);
    let single = cw.with_bit(2, !cw.bit(2));
    let (out, st) = code.decode_checked(single);
    assert_eq!(out, d);
    assert_eq!(st, DecodeStatus::Corrected);
    let double = single.with_bit(9, !single.bit(9));
    let (_, st) = code.decode_checked(double);
    assert_eq!(st, DecodeStatus::Detected);
}
