//! Property-based invariants on every cataloged coding scheme.
//!
//! These are the contracts the whole reproduction rests on: perfect
//! reconstruction on clean wires, guaranteed correction under single
//! errors, and the crosstalk delay class each code advertises.

use proptest::prelude::*;
use socbus::codes::{BusCode, Scheme};
use socbus::model::{bus_delay_factor, TransitionVector, Word};

fn all_schemes() -> Vec<Scheme> {
    let mut v = Scheme::table3();
    v.push(Scheme::Duplication);
    v.push(Scheme::Parity);
    v.push(Scheme::ExtHamming);
    v
}

/// Arbitrary data sequence of 8-bit words.
fn data_seq() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_scheme_roundtrips_sequences(seq in data_seq()) {
        for scheme in all_schemes() {
            let mut enc = scheme.build(8);
            let mut dec = scheme.build(8);
            for &v in &seq {
                let d = Word::from_bits(u128::from(v) & 0xFF, 8);
                let cw = enc.encode(d);
                prop_assert_eq!(dec.decode(cw), d, "{}", scheme.name());
            }
        }
    }

    #[test]
    fn correcting_schemes_survive_any_single_error(
        seq in data_seq(),
        wire_sel in any::<u64>(),
    ) {
        for scheme in all_schemes() {
            if scheme.build(8).correctable_errors() == 0 {
                continue;
            }
            let mut enc = scheme.build(8);
            let mut dec = scheme.build(8);
            for (i, &v) in seq.iter().enumerate() {
                let d = Word::from_bits(u128::from(v) & 0xFF, 8);
                let mut cw = enc.encode(d);
                let wire = ((wire_sel >> (i % 32)) as usize ^ i) % cw.width();
                cw.set_bit(wire, !cw.bit(wire));
                prop_assert_eq!(dec.decode(cw), d, "{} wire {}", scheme.name(), wire);
            }
        }
    }

    #[test]
    fn advertised_delay_class_holds_on_real_sequences(seq in data_seq()) {
        let lambda = 2.8;
        for scheme in all_schemes() {
            let mut enc = scheme.build(8);
            let limit = enc.guaranteed_delay_class().factor(lambda) + 1e-9;
            let mut prev = enc.encode(Word::zero(8));
            for &v in &seq {
                let cur = enc.encode(Word::from_bits(u128::from(v) & 0xFF, 8));
                let tv = TransitionVector::between(prev, cur);
                let f = bus_delay_factor(&tv, lambda);
                prop_assert!(f <= limit, "{}: factor {} > {}", scheme.name(), f, limit);
                prev = cur;
            }
        }
    }

    #[test]
    fn bus_invert_never_toggles_more_than_half(seq in data_seq()) {
        let mut enc = socbus::codes::BusInvert::new(8, 1);
        let mut prev = Word::zero(9);
        for &v in &seq {
            let cur = enc.encode(Word::from_bits(u128::from(v) & 0xFF, 8));
            let data_toggles = prev.slice(0, 8).hamming_distance(cur.slice(0, 8));
            prop_assert!(data_toggles <= 4);
            prev = cur;
        }
    }

    #[test]
    fn codeword_width_is_constant(v in any::<u64>()) {
        for scheme in all_schemes() {
            let mut enc = scheme.build(8);
            let wires = enc.wires();
            let d = Word::from_bits(u128::from(v) & 0xFF, 8);
            prop_assert_eq!(enc.encode(d).width(), wires);
        }
    }

    #[test]
    fn dap_family_distance_three_spot(a in any::<u8>(), b in any::<u8>()) {
        prop_assume!(a != b);
        for scheme in [Scheme::Dap, Scheme::Dapx] {
            let mut c1 = scheme.build(8);
            let mut c2 = scheme.build(8);
            let d = c1
                .encode(Word::from_bits(u128::from(a), 8))
                .hamming_distance(c2.encode(Word::from_bits(u128::from(b), 8)));
            prop_assert!(d >= 3, "{} distance {}", scheme.name(), d);
        }
    }
}

#[test]
fn reset_restores_initial_behavior_for_stateful_codes() {
    for scheme in [
        Scheme::BusInvert(2),
        Scheme::Bih,
        Scheme::Dapbi,
        Scheme::Bsc,
    ] {
        let mut a = scheme.build(8);
        let mut b = scheme.build(8);
        // Drive `a` with garbage, then reset; it must now match fresh `b`.
        for v in 0..20u128 {
            let _ = a.encode(Word::from_bits(v * 37, 8));
        }
        a.reset();
        for v in 0..20u128 {
            let d = Word::from_bits(v * 91, 8);
            assert_eq!(a.encode(d), b.encode(d), "{}", scheme.name());
        }
    }
}
