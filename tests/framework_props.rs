//! Property tests on the unified-framework composer: every *legal*
//! composition yields a working code with the promised structure; every
//! illegal one is rejected with the right error.

use proptest::prelude::*;
use socbus::codes::framework::{
    CacChoice, CompositionError, EccChoice, Framework, LpcChoice, LxcChoice,
};
use socbus::codes::BusCode;
use socbus::model::{bus_delay_factor, DelayClass, TransitionVector, Word};

fn cac_strategy() -> impl Strategy<Value = CacChoice> {
    prop_oneof![
        Just(CacChoice::None),
        Just(CacChoice::Shielding),
        Just(CacChoice::Duplication),
        Just(CacChoice::Ftc),
        Just(CacChoice::Fpc),
    ]
}

fn lpc_strategy() -> impl Strategy<Value = LpcChoice> {
    prop_oneof![
        Just(LpcChoice::None),
        Just(LpcChoice::BusInvert(1)),
        Just(LpcChoice::BusInvert(2)),
    ]
}

fn ecc_strategy() -> impl Strategy<Value = EccChoice> {
    prop_oneof![
        Just(EccChoice::None),
        Just(EccChoice::Parity),
        Just(EccChoice::Hamming),
        Just(EccChoice::ExtendedHamming),
    ]
}

fn lxc_strategy() -> impl Strategy<Value = LxcChoice> {
    prop_oneof![Just(LxcChoice::Shielding), Just(LxcChoice::Duplication)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn composition_is_legal_xor_rejected(
        cac in cac_strategy(),
        lpc in lpc_strategy(),
        ecc in ecc_strategy(),
        lxc1 in lxc_strategy(),
        lxc2 in lxc_strategy(),
        seq in prop::collection::vec(any::<u8>(), 1..30),
    ) {
        let k = 6;
        let built = Framework::new(k)
            .cac(cac)
            .lpc(lpc)
            .ecc(ecc)
            .lxc1(lxc1)
            .lxc2(lxc2)
            .build();
        match built {
            Ok(code) => {
                // Legal: must roundtrip over arbitrary sequences.
                let mut enc = code.clone();
                let mut dec = code.clone();
                enc.reset();
                dec.reset();
                for &v in &seq {
                    let d = Word::from_bits(u128::from(v) & 0x3F, k);
                    let cw = enc.encode(d);
                    prop_assert_eq!(dec.decode(cw), d, "{}", enc.name());
                }
            }
            Err(CompositionError::LpcBreaksCac { .. }) => {
                // Only FT-based CACs may reject bus-invert.
                prop_assert!(matches!(cac, CacChoice::Shielding | CacChoice::Ftc));
                prop_assert!(!matches!(lpc, LpcChoice::None));
            }
            Err(e) => {
                // With both LXCs always provided, nothing else can fail at
                // this width.
                prop_assert!(false, "unexpected rejection: {e}");
            }
        }
    }

    #[test]
    fn hamming_compositions_correct_single_errors(
        cac in prop_oneof![Just(CacChoice::None), Just(CacChoice::Duplication)],
        wire_sel in any::<u64>(),
        seq in prop::collection::vec(any::<u8>(), 1..20),
    ) {
        let code = Framework::new(6)
            .cac(cac)
            .ecc(EccChoice::Hamming)
            .lxc2(LxcChoice::Duplication)
            .build()
            .expect("legal");
        let mut enc = code.clone();
        for (i, &v) in seq.iter().enumerate() {
            let d = Word::from_bits(u128::from(v) & 0x3F, 6);
            let mut cw = enc.encode(d);
            let wire = ((wire_sel as usize) ^ (i * 7)) % cw.width();
            cw.set_bit(wire, !cw.bit(wire));
            let mut dec = code.clone();
            prop_assert_eq!(dec.decode(cw), d, "wire {}", wire);
        }
    }

    #[test]
    fn cac_compositions_keep_the_delay_guarantee(
        ecc in ecc_strategy(),
        seq in prop::collection::vec(any::<u8>(), 2..30),
    ) {
        let lambda = 2.0;
        let code = Framework::new(6)
            .cac(CacChoice::Duplication)
            .ecc(ecc)
            .lxc2(LxcChoice::Duplication)
            .build()
            .expect("legal");
        let mut enc = code.clone();
        enc.reset();
        let mut prev = enc.encode(Word::zero(6));
        for &v in &seq {
            let cur = enc.encode(Word::from_bits(u128::from(v) & 0x3F, 6));
            let f = bus_delay_factor(&TransitionVector::between(prev, cur), lambda);
            prop_assert!(
                f <= DelayClass::CAC.factor(lambda) + 1e-9,
                "factor {} with {:?}",
                f,
                ecc
            );
            prev = cur;
        }
    }
}
