//! Design-space exploration: sweep every cataloged scheme over a bus
//! configuration and print the delay/energy/area/reliability Pareto
//! picture — the way a designer would actually use the unified framework.
//!
//! Run with
//! `cargo run --release --example design_explorer -- [k] [length_mm] [lambda]`
//! (defaults: 32 bits, 10 mm, 2.8).

use socbus::codes::Scheme;
use socbus::model::{BusGeometry, Environment};
use socbus::netlist::cell::CellLibrary;
use socbus_bench::designs::{design_point, DesignOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let mm: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let lambda: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2.8);

    let lib = CellLibrary::cmos_130nm();
    let env = Environment::new(BusGeometry::new(mm, lambda));
    let opts = DesignOptions {
        scale_to: Some(1e-20),
        energy_samples: 60_000,
        power_samples: 800,
        ..DesignOptions::default()
    };

    println!("Design space for a {k}-bit, {mm} mm bus at lambda = {lambda}");
    println!("(ECC schemes voltage-scaled to the uncoded bus's 1e-20 target)\n");
    println!(
        "{:<10} {:>5} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "scheme", "wires", "delay(ps)", "E/word(pJ)", "area(um2)", "Vdd", "corrects"
    );

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut schemes = Scheme::table3();
    schemes.push(Scheme::ExtHamming); // SV extensions
    schemes.push(Scheme::BchDec);
    for scheme in schemes {
        let d = design_point(scheme, k, &lib, &opts);
        let delay = d.total_delay(&env);
        let energy = d.total_energy(&env);
        println!(
            "{:<10} {:>5} {:>10.0} {:>10.2} {:>10.0} {:>8.3} {:>9}",
            d.name,
            d.wires,
            delay * 1e12,
            energy * 1e12,
            d.total_area(&env) * 1e12,
            d.vdd,
            if scheme.corrects_errors() {
                "yes"
            } else {
                "no"
            },
        );
        rows.push((d.name.clone(), delay, energy));
    }

    // Pareto frontier on (delay, energy).
    let mut frontier: Vec<&(String, f64, f64)> = rows
        .iter()
        .filter(|(_, d, e)| {
            !rows
                .iter()
                .any(|(_, d2, e2)| (d2 < d && e2 <= e) || (d2 <= d && e2 < e))
        })
        .collect();
    frontier.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!(
        "\nPareto frontier (delay, energy): {}",
        frontier
            .iter()
            .map(|(n, _, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
}
