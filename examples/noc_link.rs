//! A NoC link study: choosing the coding scheme for a noisy 32-bit
//! on-chip link under different traffic types.
//!
//! Compares uncoded, bus-invert, Hamming, DAP, and parity+retransmission
//! on residual reliability, effective latency (cycles per delivered
//! word), and switched wire energy — the three axes the paper's framework
//! trades off.
//!
//! Run with `cargo run --release --example noc_link`.

use socbus::codes::Scheme;
use socbus::noc::link::{simulate_link, LinkConfig, Protocol};
use socbus::noc::traffic::{CorrelatedTraffic, UniformTraffic};

fn report(label: &str, scheme: Scheme, protocol: Protocol, correlated: bool) {
    let eps = 2e-3; // an aggressive low-swing operating point
    let cfg = LinkConfig::new(scheme, 32, eps).with_protocol(protocol);
    let n = 60_000;
    let r = if correlated {
        simulate_link(&cfg, CorrelatedTraffic::new(32, 0.08, 11).take(n), 3)
    } else {
        simulate_link(&cfg, UniformTraffic::new(32, 11).take(n), 3)
    };
    println!(
        "{label:<22} {:>12.3e} {:>10.3} {:>12.1}",
        r.residual_rate(),
        r.cycles_per_word(),
        r.energy_per_word(2.8),
    );
}

fn main() {
    let arq = Protocol::DetectRetransmit {
        rtt_cycles: 6,
        max_retries: 8,
    };
    for (name, correlated) in [("uniform traffic", false), ("correlated traffic", true)] {
        println!("\n=== {name} (32-bit link, eps = 2e-3, lambda = 2.8) ===");
        println!(
            "{:<22} {:>12} {:>10} {:>12}",
            "scheme", "resid WER", "cyc/word", "E/word(xCV2)"
        );
        report("uncoded", Scheme::Uncoded, Protocol::Fec, correlated);
        report("BI(4)", Scheme::BusInvert(4), Protocol::Fec, correlated);
        report("Hamming (FEC)", Scheme::Hamming, Protocol::Fec, correlated);
        report("DAP (FEC)", Scheme::Dap, Protocol::Fec, correlated);
        report(
            "ExtHamming (FEC)",
            Scheme::ExtHamming,
            Protocol::Fec,
            correlated,
        );
        report("parity + retransmit", Scheme::Parity, arq, correlated);
        report("ExtHamming + ARQ", Scheme::ExtHamming, arq, correlated);
    }
    println!(
        "\nReading the table: FEC correctors (Hamming/DAP) fix reliability at\n\
         constant latency; detection + retransmission gets further for a\n\
         lighter codec but pays round trips; bus-invert only helps energy."
    );
}
