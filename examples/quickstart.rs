//! Quickstart: protect a bus word with the DAP joint code.
//!
//! Demonstrates the three problems the unified framework solves at once —
//! crosstalk delay, power, reliability — on a single 16-bit transfer.
//!
//! Run with `cargo run --release --example quickstart`.

use socbus::codes::{BusCode, Dap, Uncoded};
use socbus::model::{
    bus_delay_factor, word_transition_energy, BusGeometry, DelayClass, Environment,
    TransitionVector, Word,
};

fn main() {
    // A 16-bit payload crossing a 10-mm global bus at coupling ratio 2.8.
    let mut dap = Dap::new(16);
    let mut plain = Uncoded::new(16);
    let env = Environment::new(BusGeometry::new(10.0, 2.8));

    // The crosstalk worst case: every wire flips against its neighbors.
    let before = Word::from_bits(0xAAAA, 16);
    let after = Word::from_bits(0x5555, 16);

    // 1. Crosstalk delay: the uncoded transition can hit the (1+4λ) class;
    //    every DAP transition stays within (1+2λ).
    let plain_factor = bus_delay_factor(
        &TransitionVector::between(plain.encode(before), plain.encode(after)),
        2.8,
    );
    let dap_factor = bus_delay_factor(
        &TransitionVector::between(dap.encode(before), dap.encode(after)),
        2.8,
    );
    println!("worst-case delay factor  uncoded: {plain_factor:.1}   DAP: {dap_factor:.1}");
    println!(
        "wire flight at those classes: {:.0} ps vs {:.0} ps",
        env.wire_delay(DelayClass::classify(plain_factor, 2.8)) * 1e12,
        env.wire_delay(DelayClass::CAC) * 1e12,
    );

    // 2. Energy: this pathological transfer costs both buses dearly, but
    //    on average DAP's duplicated pairs switch in common mode and the
    //    coupling term shrinks.
    let e_plain = word_transition_energy(plain.encode(before), plain.encode(after));
    let e_dap = word_transition_energy(dap.encode(before), dap.encode(after));
    println!(
        "this transfer (xC*Vdd^2)     uncoded: {:.1}  DAP: {:.1}",
        e_plain.total(2.8),
        e_dap.total(2.8)
    );
    // Against the classic reliable-bus choice (Hamming), DAP's duplicated
    // pairs switch in common mode, cutting the average coupling term even
    // though DAP uses more wires.
    let mut hamming = socbus::codes::Hamming::new(16);
    let avg_ham = socbus::codes::analysis::average_energy(&mut hamming, 50_000);
    let avg_dap = socbus::codes::analysis::average_energy(&mut dap, 50_000);
    println!(
        "average coupling coefficient Hamming: {:.1}  DAP: {:.1} (x lambda*C*Vdd^2)",
        avg_ham.coupling_coeff, avg_dap.coupling_coeff
    );

    // 3. Reliability: flip any single wire — DAP still decodes correctly.
    let mut wire_word = dap.encode(after);
    wire_word.set_bit(7, !wire_word.bit(7)); // DSM noise strike
    let decoded = dap.decode(wire_word);
    assert_eq!(decoded, after);
    println!("single wire error on the DAP bus: corrected, payload intact");
}
