//! A tour of the unified framework composer (paper Fig. 4): building
//! custom joint codes from CAC × LPC × ECC components, and seeing the
//! composition-legality rules reject the combinations the paper proves
//! unsound.
//!
//! Run with `cargo run --release --example framework_tour`.

use socbus::codes::framework::{CacChoice, EccChoice, Framework, LpcChoice, LxcChoice};
use socbus::codes::{analysis, BusCode};
use socbus::model::Word;

fn main() {
    let k = 8;

    // 1. A custom joint code the paper never tabulates: FPC-based CAC
    //    (denser than duplication) + extended Hamming + shielded parity.
    let mut custom = Framework::new(k)
        .cac(CacChoice::Fpc)
        .ecc(EccChoice::ExtendedHamming)
        .lxc2(LxcChoice::Shielding)
        .build()
        .expect("legal composition");
    println!(
        "custom code {}: {} wires for {} bits (rate {:.2}), corrects {}",
        custom.name(),
        custom.wires(),
        custom.data_bits(),
        custom.rate(),
        custom.correctable_errors()
    );
    let d = Word::from_bits(0xB7, k);
    let mut cw = custom.encode(d);
    cw.set_bit(5, !cw.bit(5));
    assert_eq!(custom.decode(cw), d);
    println!("  -> single wire error corrected through the composed stack\n");

    // 2. The generic DAPBI: every framework slot occupied.
    let full = Framework::new(k)
        .cac(CacChoice::Duplication)
        .lpc(LpcChoice::BusInvert(1))
        .lxc1(LxcChoice::Duplication)
        .ecc(EccChoice::Parity)
        .lxc2(LxcChoice::Duplication)
        .build()
        .expect("legal composition");
    let mut full_code = full.clone();
    let e = analysis::average_energy(&mut full_code, 60_000);
    println!(
        "all-slots code {}: {} wires, invert bits {}, parity bits {}, avg energy {:.2} + {:.2}L",
        full.name(),
        full.wires(),
        full.invert_bits(),
        full.ecc_parity_bits(),
        e.self_coeff,
        e.coupling_coeff
    );
    println!("  (compare the hand-optimized DAPBI: 2k+3 = 19 wires)\n");

    // 3. The rules in action: every rejection the paper's conditions imply.
    println!("compositions the framework rejects (paper's conditions 2/3/5):");
    let attempts = [
        (
            "bus-invert over FTC (inversion breaks the FT condition)",
            Framework::new(k)
                .cac(CacChoice::Ftc)
                .lpc(LpcChoice::BusInvert(1))
                .lxc1(LxcChoice::Shielding)
                .build()
                .err(),
        ),
        (
            "invert bits without LXC1 under a CAC guarantee",
            Framework::new(k)
                .cac(CacChoice::Duplication)
                .lpc(LpcChoice::BusInvert(1))
                .ecc(EccChoice::Parity)
                .lxc2(LxcChoice::Duplication)
                .build()
                .err(),
        ),
        (
            "parity bits without LXC2 under a CAC guarantee",
            Framework::new(k)
                .cac(CacChoice::Shielding)
                .ecc(EccChoice::Hamming)
                .build()
                .err(),
        ),
    ];
    for (what, err) in attempts {
        let err = err.expect("must be rejected");
        println!("  {what}\n    -> {err}");
    }
}
