//! The reliability ↔ energy tradeoff, end to end: calibrate DSM noise
//! from an uncoded reference, scale the swing of ECC-protected buses
//! (eq. (11)), then *verify by Monte Carlo* that the scaled designs still
//! meet the reliability target at a measurable operating point.
//!
//! Run with `cargo run --release --example voltage_scaling`.

use socbus::channel::montecarlo::word_error_rate;
use socbus::channel::scaling::{scale_voltage, ResidualModel};
use socbus::codes::Scheme;
use socbus::model::q_inv;

fn main() {
    let k = 32;
    let nominal = 1.2;
    let p_target = 1e-20;

    println!("Step 1: calibrate the noise from the uncoded reference");
    let unc = ResidualModel::Uncoded { wires: k };
    let eps_ref = unc.solve_eps(p_target);
    let sigma = nominal / (2.0 * q_inv(eps_ref));
    println!(
        "  eps(1.2 V) = {eps_ref:.2e}  =>  sigma_N = {:.1} mV\n",
        sigma * 1e3
    );

    println!("Step 2: scale each ECC design to the same 1e-20 target (eq. 11)");
    let designs = [
        (
            "Hamming",
            ResidualModel::DoubleError { wires: 38 },
            Scheme::Hamming,
        ),
        ("DAP", ResidualModel::Dap { k }, Scheme::Dap),
        ("DAPBI", ResidualModel::Dap { k: k + 1 }, Scheme::Dapbi),
    ];
    println!(
        "  {:<9} {:>8} {:>14} {:>13}",
        "scheme", "Vdd(V)", "bus energy", "eps at Vdd"
    );
    for (name, model, _) in designs {
        let d = scale_voltage(model, k, p_target, nominal);
        println!(
            "  {name:<9} {:>8.3} {:>13.0}% {:>13.2e}",
            d.scaled_vdd,
            100.0 * d.energy_scale(),
            d.eps_scaled
        );
    }

    println!("\nStep 3: Monte-Carlo check of the residual models the scaling");
    println!("  extrapolates with: uncoded residual falls LINEARLY in eps,");
    println!("  ECC residual falls QUADRATICALLY — which is why the curves");
    println!("  cross far below any measurable rate and ECC wins at 1e-20.");
    let (hi, lo) = (6e-3, 2e-3);
    println!(
        "  {:<9} {:>13} {:>13} {:>16}",
        "scheme", "WER@6e-3", "WER@2e-3", "slope (ideal)"
    );
    for (name, scheme, ideal) in [
        ("uncoded", Scheme::Uncoded, 3.0),
        ("Hamming", Scheme::Hamming, 9.0),
        ("DAP", Scheme::Dap, 9.0),
    ] {
        let a = word_error_rate(scheme, k, hi, 400_000, 1).rate;
        let b = word_error_rate(scheme, k, lo, 400_000, 2).rate;
        println!(
            "  {name:<9} {a:>13.3e} {b:>13.3e} {:>8.1} ({ideal:.0})",
            a / b
        );
    }
    println!("\nThe x9 quadratic slope confirms eq. (8)/(9): extrapolated to the");
    println!("1e-20 design point, the scaled-swing ECC buses meet the target with");
    println!("~50% of the nominal bus energy.");
}
